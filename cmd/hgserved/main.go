// Command hgserved runs the lifting-as-a-service daemon: an HTTP/JSON
// API over the repro/lift facade where clients submit x86-64 ELF
// binaries (single or batch) and receive per-function progress and
// verdicts as an NDJSON stream. Duplicate submissions are answered from
// the content-addressed Hoare-graph store with zero lifts; the store's
// locked read-merge-write flush makes sharing its container with
// concurrent hglift -store runs safe.
//
// Usage:
//
//	hgserved [-addr :8441] [-store f] [-parallel N] [-queue N]
//	         [-tenant-share N] [-jobs N] [-timeout d]
//	         [-trace out.jsonl] [-metrics]
//
// Admission control bounds the daemon on two axes: at most -parallel
// submissions run concurrently with -queue more waiting, and each tenant
// may hold at most -tenant-share of those slots. A submission beyond
// either bound is rejected immediately with 429 and a Retry-After hint —
// the queue never grows without bound. /metricz serves the live metrics
// registry; /healthz reports readiness.
//
// SIGINT/SIGTERM shut the daemon down gracefully: new submissions bounce
// with 503, in-flight lifts are cancelled (StatusCancelled on their
// streams, which still close with result and summary lines), and the
// store is flushed exactly once before exit.
//
// Load-generator mode drives an already-running daemon instead of
// serving, proving throughput, dedup and backpressure under concurrent
// clients:
//
//	hgserved -loadgen -target http://host:8441 [-clients N] [-rounds N]
//
// Each client submits the corpus scenario batch -rounds times under its
// own tenant; the report counts ok/rejected/cancelled requests, store
// hits and misses, and checks every completed round renders the same
// canonical summary (dedup correctness under concurrency).
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"repro/internal/corpus"
	"repro/internal/hgstore"
	"repro/internal/obs"
	"repro/internal/serve"
	"repro/serveclient"
)

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgserved:", err)
	os.Exit(1)
}

func main() {
	var (
		addr        = flag.String("addr", ":8441", "listen address")
		storePath   = flag.String("store", "", "content-addressed Hoare-graph store (enables dedup)")
		parallel    = flag.Int("parallel", 2, "concurrent pipeline runs")
		queue       = flag.Int("queue", 8, "submissions allowed to wait for a run slot")
		tenantShare = flag.Int("tenant-share", 0, "max in-flight submissions per tenant (0 = half the capacity)")
		jobs        = flag.Int("jobs", 0, "pipeline workers per run (0 = all CPUs)")
		timeout     = flag.Duration("timeout", 0, "per-lift wall-clock budget (0 = none)")
		traceOut    = flag.String("trace", "", "write the event trace as JSONL to this file")
		showMetrics = flag.Bool("metrics", false, "print the metrics registry on exit")

		loadgen = flag.Bool("loadgen", false, "run the load generator against -target instead of serving")
		target  = flag.String("target", "http://localhost:8441", "loadgen: daemon base URL")
		clients = flag.Int("clients", 4, "loadgen: concurrent clients")
		rounds  = flag.Int("rounds", 4, "loadgen: submissions per client")
	)
	flag.Parse()

	if *loadgen {
		os.Exit(runLoadgen(*target, *clients, *rounds))
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var sinks []obs.Sink
	var jsonl *obs.JSONL
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		jsonl = obs.NewJSONL(f)
		sinks = append(sinks, jsonl)
	}
	metrics := obs.NewMetrics()

	var st *hgstore.Store
	if *storePath != "" {
		var err error
		if st, err = hgstore.Open(*storePath); err != nil {
			fatal(err)
		}
		if n := st.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "hgserved: store: dropped %d corrupt or stale-version records\n", n)
		}
		fmt.Fprintf(os.Stderr, "hgserved: store %s: %d entries\n", st.Path(), st.Len())
	}

	engine := serve.New(serve.Options{
		Store:       st,
		Sinks:       sinks,
		Metrics:     metrics,
		Parallel:    *parallel,
		QueueDepth:  *queue,
		TenantShare: *tenantShare,
		Jobs:        *jobs,
		Timeout:     *timeout,
	})
	srv := &http.Server{Addr: *addr, Handler: engine.Handler()}
	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		fatal(err)
	}
	fmt.Fprintf(os.Stderr, "hgserved: listening on %s\n", ln.Addr())

	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// One exit point: whatever ends the daemon — a signal or a listener
	// failure — the engine drains, the store flushes once, the trace and
	// metrics land, and only then is the status decided.
	code := 0
	select {
	case <-ctx.Done():
		fmt.Fprintln(os.Stderr, "hgserved: shutting down")
	case err := <-serveErr:
		fmt.Fprintln(os.Stderr, "hgserved:", err)
		code = 1
	}
	shutCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := engine.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hgserved: engine shutdown:", err)
		code = 1
	}
	if err := srv.Shutdown(shutCtx); err != nil {
		fmt.Fprintln(os.Stderr, "hgserved: http shutdown:", err)
		code = 1
	}
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "hgserved: trace:", err)
			code = 1
		}
		traceFile.Close()
	}
	if *showMetrics {
		fmt.Print(metrics.Dump())
	}
	os.Exit(code)
}

// runLoadgen hammers the target daemon with clients×rounds scenario
// batches and reports throughput, dedup and backpressure behaviour. The
// exit status is non-zero when no request completed, or when completed
// rounds disagree on the canonical summary (a dedup corruption).
func runLoadgen(target string, clients, rounds int) int {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		fatal(err)
	}
	specs := make([]serveclient.Spec, 0, len(scenarios))
	for _, s := range scenarios {
		specs = append(specs, serveclient.Spec{Name: s.Name, ELF: s.Raw, Funcs: []uint64{s.FuncAddr}})
	}

	var (
		ok, rejected, cancelled, failed atomic.Int64
		hits, misses                    atomic.Int64
		mu                              sync.Mutex
		canonicals                      = map[string]int{}
	)
	start := time.Now()
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &serveclient.Client{BaseURL: target, Tenant: fmt.Sprintf("loadgen-%d", c)}
			for r := 0; r < rounds; r++ {
				res, err := client.Lift(context.Background(), specs...)
				var re *serveclient.RetryError
				switch {
				case errors.As(err, &re):
					rejected.Add(1)
					// Honest backpressure: wait the hinted delay, move on
					// to the next round rather than hammering.
					time.Sleep(re.After)
					continue
				case err != nil:
					failed.Add(1)
					fmt.Fprintf(os.Stderr, "loadgen: client %d round %d: %v\n", c, r, err)
					continue
				}
				if res.Summary.Cancelled > 0 {
					cancelled.Add(1)
					continue
				}
				ok.Add(1)
				hits.Add(int64(res.Summary.StoreHits))
				misses.Add(int64(res.Summary.StoreMisses))
				mu.Lock()
				canonicals[res.Summary.Canonical]++
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	wall := time.Since(start)

	total := ok.Load() + rejected.Load() + cancelled.Load() + failed.Load()
	rate := float64(ok.Load()) / wall.Seconds()
	fmt.Printf("loadgen: clients=%d rounds=%d requests=%d ok=%d rejected=%d cancelled=%d failed=%d hits=%d misses=%d wall=%s rate=%.1f/s\n",
		clients, rounds, total, ok.Load(), rejected.Load(), cancelled.Load(), failed.Load(),
		hits.Load(), misses.Load(), wall.Round(time.Millisecond), rate)

	code := 0
	if ok.Load() == 0 {
		fmt.Fprintln(os.Stderr, "loadgen: no request completed")
		code = 1
	}
	if len(canonicals) > 1 {
		fmt.Fprintf(os.Stderr, "loadgen: %d distinct canonical summaries across completed rounds, want 1 (dedup corruption)\n", len(canonicals))
		code = 1
	} else if len(canonicals) == 1 {
		fmt.Println("loadgen: all completed rounds rendered one canonical summary")
	}
	if failed.Load() > 0 {
		code = 1
	}
	return code
}
