// Command hgprove runs Step 2 of the paper: it lifts a binary (or one
// function) and independently re-verifies every vertex of the extracted
// Hoare graph as a Hoare triple — one mutually independent theorem per
// vertex, checked in parallel. With -thy it also writes the Isabelle/HOL-
// style theory export.
//
// Usage:
//
//	hgprove [-func addr|name] [-thy out.thy] binary.elf
//
// hgprove is also the dist coordinator's worker executable: with the
// hidden -worker flag (or the REPRO_HG_WORKER=1 environment the
// coordinator sets when re-executing itself) it reads one binary shard
// container from stdin, re-checks every graph it holds, and writes the
// verdicts to stdout. See internal/dist and the "Distributed
// verification" section of ARCHITECTURE.md.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro"
	"repro/internal/dist"
	"repro/internal/hglint"
	"repro/internal/hgstore"
	"repro/internal/image"
	"repro/internal/sem"
	"repro/internal/triple"
)

func main() {
	dist.MaybeWorker()
	funcSpec := flag.String("func", "", "verify a single function: hex address or symbol name")
	thyOut := flag.String("thy", "", "write the theory export to this file")
	hgIn := flag.String("hg", "", "verify a previously exported graph (.hg text or compact binary, auto-detected) against the binary")
	worker := flag.Bool("worker", false, "run as a dist shard worker: shard on stdin, result on stdout (hidden; used by the coordinator)")
	flag.Parse()
	if *worker {
		if err := dist.RunWorker(os.Stdin, os.Stdout); err != nil {
			fatal(err)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hgprove [-func addr|name] [-thy out.thy] binary.elf")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *hgIn != "" {
		im, err := image.Load(data)
		if err != nil {
			fatal(err)
		}
		hg, err := os.ReadFile(*hgIn)
		if err != nil {
			fatal(err)
		}
		g, err := hgstore.LoadGraph(im, hg)
		if err != nil {
			fatal(err)
		}
		// Fail-fast precheck: an externally supplied graph may be
		// malformed in ways the theorem checker would only report as
		// opaque failures. Lint it first and refuse broken input.
		lrep := hglint.Lint(g)
		for _, d := range lrep.Diagnostics {
			fmt.Fprintf(os.Stderr, "hgprove: lint: %s\n", d)
		}
		if lrep.HasErrors() {
			fatal(fmt.Errorf("%s: %d hglint errors; not running Step 2", g.FuncName, lrep.Errors()))
		}
		rep := triple.Check(context.Background(), im, g, sem.DefaultConfig(), triple.Workers(4))
		fmt.Printf("%s: %d proven, %d assumed, %d failed\n", g.FuncName, rep.Proven, rep.Assumed, rep.Failed)
		for _, th := range rep.Sorted() {
			if th.Verdict == triple.Failed {
				fmt.Printf("  FAILED %s: %s\n", th.Vertex, th.Reason)
			}
		}
		if rep.Failed != 0 {
			os.Exit(1)
		}
		return
	}

	if *funcSpec != "" {
		addr, err := resolveFunc(data, *funcSpec)
		if err != nil {
			fatal(err)
		}
		fr, vr, err := repro.VerifyFunction(data, addr)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("%s: %d proven, %d assumed, %d failed\n", fr.Name, vr.Proven, vr.Assumed, vr.Failed)
		for _, f := range vr.Failures {
			fmt.Println("  FAILED", f)
		}
		if *thyOut != "" {
			if err := os.WriteFile(*thyOut, []byte(fr.Theory), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("theory written to", *thyOut)
		}
		if !vr.AllProven() {
			os.Exit(1)
		}
		return
	}

	vr, err := repro.VerifyBinary(data)
	if err != nil {
		fatal(err)
	}
	fmt.Printf("binary: %d proven, %d assumed, %d failed\n", vr.Proven, vr.Assumed, vr.Failed)
	for _, f := range vr.Failures {
		fmt.Println("  FAILED", f)
	}
	if !vr.AllProven() {
		os.Exit(1)
	}
}

func resolveFunc(data []byte, spec string) (uint64, error) {
	if addr, err := strconv.ParseUint(spec, 0, 64); err == nil {
		return addr, nil
	}
	syms, err := repro.FuncSymbols(data)
	if err != nil {
		return 0, err
	}
	if addr, ok := syms[spec]; ok {
		return addr, nil
	}
	return 0, fmt.Errorf("hgprove: no function %q", spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hgprove:", err)
	os.Exit(1)
}
