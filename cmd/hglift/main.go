// Command hglift lifts an x86-64 ELF binary to a Hoare Graph (Step 1 of
// the paper) and reports the extraction statistics, annotations, proof
// obligations and assumptions.
//
// Usage:
//
//	hglift [-func addr|name] [-dump] [-thy] [-stats] binary.elf
//
// Without -func the binary is lifted from its entry point, exploring every
// reachable instruction including internal calls. With -func, the single
// function is lifted the way the paper lifts exported shared-object
// functions.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"

	"repro"
	"repro/internal/core"
	"repro/internal/hoare"
	"repro/internal/image"
)

func main() {
	funcSpec := flag.String("func", "", "lift a single function: hex address or symbol name")
	dump := flag.Bool("dump", false, "print the Hoare graph (vertices, invariants, edges)")
	thy := flag.Bool("thy", false, "print the Isabelle/HOL-style theory export")
	disasm := flag.Bool("disasm", false, "print the recovered disassembly")
	hgOut := flag.String("o", "", "write the lifted graph to this .hg file (requires -func)")
	dotOut := flag.String("dot", "", "write a Graphviz rendering to this file (requires -func)")
	flag.Parse()
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hglift [-func addr|name] [-dump] [-thy] [-disasm] binary.elf")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *funcSpec == "" {
		rep, err := repro.LiftBinary(data)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("binary: %s\n", rep.Status)
		printStats(rep.Stats)
		for _, fr := range rep.Funcs {
			fmt.Printf("  %-24s %-28s instrs=%-5d states=%-5d A=%d B=%d C=%d\n",
				fr.Name, fr.Status, fr.Stats.Instructions, fr.Stats.States,
				fr.Stats.ResolvedInd, fr.Stats.UnresolvedJump, fr.Stats.UnresolvedCall)
			printDetails(fr, *dump, *thy)
		}
		return
	}

	addr, err := resolveFunc(data, *funcSpec)
	if err != nil {
		fatal(err)
	}
	fr, err := repro.LiftFunction(data, addr)
	if err != nil {
		fatal(err)
	}
	if *hgOut != "" || *dotOut != "" {
		im, err := image.Load(data)
		if err != nil {
			fatal(err)
		}
		l := core.New(im, core.DefaultConfig())
		res := l.LiftFunc(addr, fr.Name)
		if res.Graph == nil {
			fatal(fmt.Errorf("no graph to export"))
		}
		if *hgOut != "" {
			if err := os.WriteFile(*hgOut, hoare.Marshal(res.Graph), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("graph written to", *hgOut)
		}
		if *dotOut != "" {
			if err := os.WriteFile(*dotOut, []byte(res.Graph.ToDOT()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("dot written to", *dotOut)
		}
	}
	fmt.Printf("%s @ %#x: %s\n", fr.Name, fr.Addr, fr.Status)
	for _, r := range fr.Reasons {
		fmt.Printf("  reason: %s\n", r)
	}
	printStats(fr.Stats)
	printDetails(fr, *dump, *thy)
	if *disasm {
		lines, err := repro.Disasm(data, addr)
		if err != nil {
			fatal(err)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	}
}

func resolveFunc(data []byte, spec string) (uint64, error) {
	if addr, err := strconv.ParseUint(spec, 0, 64); err == nil {
		return addr, nil
	}
	syms, err := repro.FuncSymbols(data)
	if err != nil {
		return 0, err
	}
	if addr, ok := syms[spec]; ok {
		return addr, nil
	}
	return 0, fmt.Errorf("hglift: no function %q (have %d symbols)", spec, len(syms))
}

func printStats(s repro.Stats) {
	fmt.Printf("  instructions=%d states=%d edges=%d resolved=%d unresolved-jumps=%d unresolved-calls=%d\n",
		s.Instructions, s.States, s.Edges, s.ResolvedInd, s.UnresolvedJump, s.UnresolvedCall)
}

func printDetails(fr *repro.FuncReport, dump, thy bool) {
	for _, o := range fr.Obligations {
		fmt.Printf("  obligation: %s\n", o)
	}
	for _, a := range fr.Assumptions {
		fmt.Printf("  assumption: %s\n", a)
	}
	if dump {
		fmt.Println(fr.Graph)
	}
	if thy {
		fmt.Println(fr.Theory)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hglift:", err)
	os.Exit(1)
}
