// Command hglift lifts an x86-64 ELF binary to a Hoare Graph (Step 1 of
// the paper) and reports the extraction statistics, annotations, proof
// obligations and assumptions.
//
// Usage:
//
//	hglift [-func addr|name] [-dump] [-thy] [-stats] binary.elf ...
//
// Without -func the binary is lifted from its entry point, exploring every
// reachable instruction including internal calls. With -func, the single
// function is lifted the way the paper lifts exported shared-object
// functions.
//
// Several binaries may be given at once; they are lifted as a batch through
// the pipeline scheduler, fanned out across -jobs workers (0 = all CPUs),
// each under the -timeout wall-clock budget, and summarised one line per
// binary. The detail flags (-func, -dump, -thy, -disasm, -o, -dot) apply to
// the single-binary form only.
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"time"

	"repro"
	"repro/internal/core"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/pipeline"
)

func main() {
	funcSpec := flag.String("func", "", "lift a single function: hex address or symbol name")
	dump := flag.Bool("dump", false, "print the Hoare graph (vertices, invariants, edges)")
	thy := flag.Bool("thy", false, "print the Isabelle/HOL-style theory export")
	disasm := flag.Bool("disasm", false, "print the recovered disassembly")
	hgOut := flag.String("o", "", "write the lifted graph to this .hg file (requires -func)")
	dotOut := flag.String("dot", "", "write a Graphviz rendering to this file (requires -func)")
	jobs := flag.Int("jobs", 0, "batch mode: parallel lift workers (0 = all CPUs)")
	timeout := flag.Duration("timeout", 0, "batch mode: per-lift wall-clock budget (0 = none)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: hglift [-func addr|name] [-dump] [-thy] [-disasm] [-jobs N] [-timeout d] binary.elf ...")
		os.Exit(2)
	}
	if flag.NArg() > 1 {
		if *funcSpec != "" || *dump || *thy || *disasm || *hgOut != "" || *dotOut != "" {
			fmt.Fprintln(os.Stderr, "hglift: detail flags apply to a single binary only")
			os.Exit(2)
		}
		liftBatch(flag.Args(), *jobs, *timeout)
		return
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}

	if *funcSpec == "" {
		rep, err := repro.LiftBinary(data)
		if err != nil {
			fatal(err)
		}
		fmt.Printf("binary: %s\n", rep.Status)
		printStats(rep.Stats)
		for _, fr := range rep.Funcs {
			fmt.Printf("  %-24s %-28s instrs=%-5d states=%-5d A=%d B=%d C=%d\n",
				fr.Name, fr.Status, fr.Stats.Instructions, fr.Stats.States,
				fr.Stats.ResolvedInd, fr.Stats.UnresolvedJump, fr.Stats.UnresolvedCall)
			printDetails(fr, *dump, *thy)
		}
		return
	}

	addr, err := resolveFunc(data, *funcSpec)
	if err != nil {
		fatal(err)
	}
	fr, err := repro.LiftFunction(data, addr)
	if err != nil {
		fatal(err)
	}
	if *hgOut != "" || *dotOut != "" {
		im, err := image.Load(data)
		if err != nil {
			fatal(err)
		}
		l := core.New(im, core.DefaultConfig())
		res := l.LiftFunc(addr, fr.Name)
		if res.Graph == nil {
			fatal(fmt.Errorf("no graph to export"))
		}
		if *hgOut != "" {
			if err := os.WriteFile(*hgOut, hoare.Marshal(res.Graph), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("graph written to", *hgOut)
		}
		if *dotOut != "" {
			if err := os.WriteFile(*dotOut, []byte(res.Graph.ToDOT()), 0o644); err != nil {
				fatal(err)
			}
			fmt.Println("dot written to", *dotOut)
		}
	}
	fmt.Printf("%s @ %#x: %s\n", fr.Name, fr.Addr, fr.Status)
	for _, r := range fr.Reasons {
		fmt.Printf("  reason: %s\n", r)
	}
	printStats(fr.Stats)
	printDetails(fr, *dump, *thy)
	if *disasm {
		lines, err := repro.Disasm(data, addr)
		if err != nil {
			fatal(err)
		}
		for _, l := range lines {
			fmt.Println(l)
		}
	}
}

// liftBatch lifts every named binary from its entry point through the
// pipeline scheduler and prints a one-line summary per binary plus corpus
// totals.
func liftBatch(paths []string, jobs int, timeout time.Duration) {
	tasks := make([]pipeline.Task, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		im, err := image.Load(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		tasks = append(tasks, pipeline.Task{Name: path, Img: im, Binary: true})
	}
	sum := pipeline.Run(tasks, pipeline.Options{Jobs: jobs, Timeout: timeout})
	for _, r := range sum.Results {
		fmt.Printf("%-32s %-12s instrs=%-6d states=%-6d A=%-3d B=%-3d C=%-3d %8s\n",
			r.Name, r.Status, r.Stats.Graph.Instructions, r.Stats.Graph.States,
			r.Stats.Graph.ResolvedInd, r.Stats.Graph.UnresolvedJump,
			r.Stats.Graph.UnresolvedCall, r.Stats.Wall.Round(time.Millisecond))
		if r.PanicMsg != "" {
			fmt.Printf("  panic: %s\n", r.PanicMsg)
		}
	}
	cs := sum.Cache.Stats()
	fmt.Printf("%d lifted, %d unprovable, %d concurrency, %d timeout, %d error, %d panic in %s; solver memo %.0f%% of %d queries\n",
		sum.Lifted, sum.Unprovable, sum.Concurrency, sum.Timeouts, sum.Errors, sum.Panics,
		sum.Wall.Round(time.Millisecond), 100*cs.HitRate(), cs.Queries)
	if sum.Lifted != len(sum.Results) {
		os.Exit(1)
	}
}

func resolveFunc(data []byte, spec string) (uint64, error) {
	if addr, err := strconv.ParseUint(spec, 0, 64); err == nil {
		return addr, nil
	}
	syms, err := repro.FuncSymbols(data)
	if err != nil {
		return 0, err
	}
	if addr, ok := syms[spec]; ok {
		return addr, nil
	}
	return 0, fmt.Errorf("hglift: no function %q (have %d symbols)", spec, len(syms))
}

func printStats(s repro.Stats) {
	fmt.Printf("  instructions=%d states=%d edges=%d resolved=%d unresolved-jumps=%d unresolved-calls=%d\n",
		s.Instructions, s.States, s.Edges, s.ResolvedInd, s.UnresolvedJump, s.UnresolvedCall)
}

func printDetails(fr *repro.FuncReport, dump, thy bool) {
	for _, o := range fr.Obligations {
		fmt.Printf("  obligation: %s\n", o)
	}
	for _, a := range fr.Assumptions {
		fmt.Printf("  assumption: %s\n", a)
	}
	if dump {
		fmt.Println(fr.Graph)
	}
	if thy {
		fmt.Println(fr.Theory)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hglift:", err)
	os.Exit(1)
}
