// Command hglift lifts an x86-64 ELF binary to a Hoare Graph (Step 1 of
// the paper) and reports the extraction statistics, annotations, proof
// obligations and assumptions.
//
// Usage:
//
//	hglift [-func addr|name] [-dump] [-thy] [-stats] binary.elf ...
//
// Without -func the binary is lifted from its entry point, exploring every
// reachable instruction including internal calls. With -func, the single
// function is lifted the way the paper lifts exported shared-object
// functions.
//
// Several binaries may be given at once; they are lifted as a batch through
// the pipeline scheduler, fanned out across -jobs workers (0 = all CPUs),
// each under the -timeout wall-clock budget, and summarised one line per
// binary. The detail flags (-func, -dump, -thy, -disasm, -o, -dot) apply to
// the single-binary form only.
//
// The exit status is non-zero when any lift panicked, timed out, errored,
// was cancelled or was quarantined (and, in batch mode, when any binary
// failed to lift); -keep-going reports the trouble but exits 0 anyway.
// Retry and checkpoint flags make long batches survivable:
//
//	-retries N         attempts per lift (retries panicked/timed-out lifts)
//	-retry-backoff d   delay before the first retry (doubles per retry)
//	-checkpoint f      batch mode: journal completed lifts to f
//	-resume            restore completed lifts from -checkpoint instead of
//	                   truncating it; only the remainder is lifted
//	-store f           cache lifted Hoare graphs in the content-addressed
//	                   store at f; re-lifting an unchanged binary decodes
//	                   the cached graphs instead of exploring
//
// -ptr enables the pointer-analysis pre-pass: a per-function fact table of
// proven region relations and separation hypotheses is computed before
// exploring, so undecided pointer pairs stop forking the memory model.
// Separation hypotheses appear in the graph's assumption list.
//
// -o writes the single-function graph as .hg text; -obin writes the
// compact binary container that hgprove/hglint auto-detect.
//
// Observability flags apply to every form:
//
//	-trace out.jsonl   write every lift/solver/memory-model event as JSONL
//	-metrics           print the aggregated metrics registry on exit
//	-pprof addr        serve net/http/pprof on addr (e.g. localhost:6060)
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	_ "net/http/pprof"
	"os"
	"os/signal"
	"sort"
	"strconv"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/hgstore"
	"repro/internal/hoare"
	"repro/internal/image"
	"repro/internal/obs"
	"repro/internal/triple"
	"repro/lift"
)

// observer wires the -trace/-metrics flags into obs sinks shared by every
// lifting path. flush must run before any normal or error exit so the
// trace file is complete and the metrics dump is printed.
type observer struct {
	opts    []lift.Option
	jsonl   *obs.JSONL
	file    *os.File
	metrics *obs.Metrics
}

func newObserver(tracePath string, withMetrics bool) *observer {
	o := &observer{}
	var sinks []obs.Sink
	if tracePath != "" {
		f, err := os.Create(tracePath)
		if err != nil {
			fatal(err)
		}
		o.file = f
		o.jsonl = obs.NewJSONL(f)
		sinks = append(sinks, o.jsonl)
	}
	if withMetrics {
		o.metrics = obs.NewMetrics()
		sinks = append(sinks, o.metrics)
	}
	if len(sinks) > 0 {
		o.opts = []lift.Option{lift.Observe(sinks...)}
	}
	return o
}

func (o *observer) flush() {
	if o.jsonl != nil {
		if err := o.jsonl.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "hglift: trace:", err)
		}
		o.file.Close()
	}
	if o.metrics != nil {
		fmt.Print(o.metrics.Dump())
	}
}

func main() {
	funcSpec := flag.String("func", "", "lift a single function: hex address or symbol name")
	dump := flag.Bool("dump", false, "print the Hoare graph (vertices, invariants, edges)")
	thy := flag.Bool("thy", false, "print the Isabelle/HOL-style theory export")
	disasm := flag.Bool("disasm", false, "print the recovered disassembly")
	hgOut := flag.String("o", "", "write the lifted graph to this .hg file (requires -func)")
	binOut := flag.String("obin", "", "write the lifted graph to this file in the compact binary format (requires -func)")
	dotOut := flag.String("dot", "", "write a Graphviz rendering to this file (requires -func)")
	jobs := flag.Int("jobs", 0, "batch mode: parallel lift workers (0 = all CPUs)")
	timeout := flag.Duration("timeout", 0, "per-lift wall-clock budget (0 = none)")
	retries := flag.Int("retries", 1, "attempts per lift (>1 retries panicked/timed-out lifts)")
	retryBackoff := flag.Duration("retry-backoff", 0, "delay before the first retry (doubles per retry)")
	ckptPath := flag.String("checkpoint", "", "batch mode: journal completed lifts to this file")
	resume := flag.Bool("resume", false, "restore completed lifts from -checkpoint instead of truncating")
	storePath := flag.String("store", "", "cache lifted Hoare graphs in the store at this file")
	ptrFacts := flag.Bool("ptr", false, "run the pointer-analysis pre-pass before each lift")
	keepGoing := flag.Bool("keep-going", false, "exit 0 even when lifts panicked, timed out, errored or were quarantined")
	traceOut := flag.String("trace", "", "write a JSONL event trace to this file")
	showMetrics := flag.Bool("metrics", false, "print the aggregated metrics registry on exit")
	pprofAddr := flag.String("pprof", "", "serve net/http/pprof on this address (e.g. localhost:6060)")
	flag.Parse()
	if flag.NArg() < 1 {
		fmt.Fprintln(os.Stderr, "usage: hglift [-func addr|name] [-dump] [-thy] [-disasm] [-jobs N] [-timeout d] [-retries N] [-checkpoint f [-resume]] [-keep-going] [-trace f] [-metrics] [-pprof addr] binary.elf ...")
		os.Exit(2)
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "hglift: -resume requires -checkpoint")
		os.Exit(2)
	}
	if *pprofAddr != "" {
		go func() {
			if err := http.ListenAndServe(*pprofAddr, nil); err != nil {
				fmt.Fprintln(os.Stderr, "hglift: pprof:", err)
			}
		}()
	}
	ctx, stopSignals := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stopSignals()
	obsv := newObserver(*traceOut, *showMetrics)
	retry := lift.RetryPolicy{MaxAttempts: *retries, Backoff: *retryBackoff}
	var store *lift.Store
	if *storePath != "" {
		var err error
		if store, err = lift.OpenStore(*storePath); err != nil {
			fatal(err)
		}
		if n := store.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "hglift: store: dropped %d corrupt or stale-version records\n", n)
		}
	}

	if flag.NArg() > 1 {
		if *funcSpec != "" || *dump || *thy || *disasm || *hgOut != "" || *binOut != "" || *dotOut != "" {
			fmt.Fprintln(os.Stderr, "hglift: detail flags apply to a single binary only")
			os.Exit(2)
		}
		liftBatch(ctx, flag.Args(), batchConfig{
			jobs: *jobs, timeout: *timeout, retry: retry,
			ckptPath: *ckptPath, resume: *resume, keepGoing: *keepGoing,
			store: store, ptr: *ptrFacts,
		}, obsv)
		return
	}
	if *ckptPath != "" {
		fmt.Fprintln(os.Stderr, "hglift: -checkpoint applies to batch mode only")
		os.Exit(2)
	}
	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	im, err := image.Load(data)
	if err != nil {
		fatal(err)
	}
	opts := append([]lift.Option{lift.Jobs(1), lift.Timeout(*timeout), lift.Retry(retry)}, obsv.opts...)
	if store != nil {
		opts = append(opts, lift.WithStore(store))
	}
	if *ptrFacts {
		opts = append(opts, lift.PointerFacts())
	}

	if *funcSpec == "" {
		res := lift.One(ctx, lift.Binary(flag.Arg(0), im), opts...)
		br := res.Binary
		if br == nil {
			obsv.flush()
			fatal(fmt.Errorf("lift %s: %s %s", flag.Arg(0), res.Status, res.PanicMsg))
		}
		fmt.Printf("binary: %s\n", br.Status)
		printStats(br.Stats)
		for _, fr := range br.Funcs {
			st := fr.Stats()
			fmt.Printf("  %-24s %-28s instrs=%-5d states=%-5d A=%d B=%d C=%d\n",
				fr.Name, fr.Status, st.Instructions, st.States,
				st.ResolvedInd, st.UnresolvedJump, st.UnresolvedCall)
			printDetails(fr, *dump, *thy)
		}
		obsv.flush()
		exitUnhealthy(res.Status, *keepGoing)
		return
	}

	addr, name, err := resolveFunc(im, *funcSpec)
	if err != nil {
		fatal(err)
	}
	res := lift.One(ctx, lift.Func(name, im, addr), opts...)
	fr := res.Func
	if fr == nil {
		obsv.flush()
		fatal(fmt.Errorf("lift %s: %s %s", name, res.Status, res.PanicMsg))
	}
	if fr.Graph != nil && *hgOut != "" {
		if err := os.WriteFile(*hgOut, hoare.Marshal(fr.Graph), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("graph written to", *hgOut)
	}
	if fr.Graph != nil && *binOut != "" {
		if err := os.WriteFile(*binOut, hgstore.MarshalGraph(fr.Graph), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("binary graph written to", *binOut)
	}
	if fr.Graph != nil && *dotOut != "" {
		if err := os.WriteFile(*dotOut, []byte(fr.Graph.ToDOT()), 0o644); err != nil {
			fatal(err)
		}
		fmt.Println("dot written to", *dotOut)
	}
	fmt.Printf("%s @ %#x: %s\n", fr.Name, fr.Addr, fr.Status)
	for _, r := range fr.Reasons {
		fmt.Printf("  reason: %s\n", r)
	}
	printStats(fr.Stats())
	printDetails(fr, *dump, *thy)
	if *disasm && fr.Graph != nil {
		for _, line := range disasmLines(fr.Graph) {
			fmt.Println(line)
		}
	}
	obsv.flush()
	exitUnhealthy(res.Status, *keepGoing)
}

// exitUnhealthy terminates with a non-zero status when a single lift
// ended in an infrastructure failure (panic, timeout, error,
// cancellation); -keep-going reports it but keeps the zero status.
func exitUnhealthy(status core.Status, keepGoing bool) {
	switch status {
	case core.StatusPanic, core.StatusTimeout, core.StatusError, core.StatusCancelled:
		fmt.Fprintf(os.Stderr, "hglift: lift ended in %s\n", status)
		if !keepGoing {
			os.Exit(1)
		}
	}
}

// batchConfig carries the robustness tuning of one batch run.
type batchConfig struct {
	jobs      int
	timeout   time.Duration
	retry     lift.RetryPolicy
	ckptPath  string
	resume    bool
	keepGoing bool
	store     *lift.Store
	ptr       bool
}

// liftBatch lifts every named binary from its entry point through the
// facade and prints a one-line summary per binary plus corpus totals. The
// exit status is decided after the trace and metrics flush, so even an
// unhealthy (or interrupted) batch keeps its observability output.
func liftBatch(ctx context.Context, paths []string, cfg batchConfig, obsv *observer) {
	reqs := make([]lift.Request, 0, len(paths))
	for _, path := range paths {
		data, err := os.ReadFile(path)
		if err != nil {
			fatal(err)
		}
		im, err := image.Load(data)
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
		reqs = append(reqs, lift.Binary(path, im))
	}
	var ckpt *lift.Checkpoint
	if cfg.ckptPath != "" {
		if !cfg.resume {
			if err := os.Remove(cfg.ckptPath); err != nil && !os.IsNotExist(err) {
				fatal(err)
			}
		}
		var err error
		ckpt, err = lift.OpenCheckpoint(cfg.ckptPath)
		if err != nil {
			fatal(err)
		}
		if n := ckpt.Skipped(); n > 0 {
			fmt.Fprintf(os.Stderr, "hglift: checkpoint: dropped %d unparseable journal lines\n", n)
		}
	}
	opts := append([]lift.Option{
		lift.Jobs(cfg.jobs), lift.Timeout(cfg.timeout),
		lift.Retry(cfg.retry), lift.WithCheckpoint(ckpt),
	}, obsv.opts...)
	if cfg.store != nil {
		opts = append(opts, lift.WithStore(cfg.store))
	}
	if cfg.ptr {
		opts = append(opts, lift.PointerFacts())
	}
	sum := lift.Run(ctx, reqs, opts...)
	for _, r := range sum.Results {
		note := ""
		if r.Restored {
			note = " (restored)"
		} else if r.Quarantined {
			note = fmt.Sprintf(" (quarantined after %d attempts)", r.Attempts)
		}
		fmt.Printf("%-32s %-12s instrs=%-6d states=%-6d A=%-3d B=%-3d C=%-3d %8s%s\n",
			r.Name, r.Status, r.Stats.Graph.Instructions, r.Stats.Graph.States,
			r.Stats.Graph.ResolvedInd, r.Stats.Graph.UnresolvedJump,
			r.Stats.Graph.UnresolvedCall, r.Stats.Wall.Round(time.Millisecond), note)
		if r.PanicMsg != "" {
			fmt.Printf("  panic: %s\n", r.PanicMsg)
		}
	}
	cs := sum.Cache.Stats()
	fmt.Printf("%d lifted, %d unprovable, %d concurrency, %d timeout, %d error, %d panic in %s; solver memo %.0f%% of %d queries\n",
		sum.Lifted, sum.Unprovable, sum.Concurrency, sum.Timeouts, sum.Errors, sum.Panics,
		sum.Wall.Round(time.Millisecond), 100*cs.HitRate(), cs.Queries)
	if sum.Retried > 0 || sum.Quarantined > 0 || sum.Restored > 0 {
		fmt.Printf("%d retried, %d quarantined, %d restored from checkpoint\n",
			sum.Retried, sum.Quarantined, sum.Restored)
	}
	obsv.flush()
	code := 0
	if err := ckpt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "hglift: checkpoint:", err)
		code = 1
	}
	if sum.Lifted < len(sum.Results) || sum.Quarantined > 0 || sum.LintErrors > 0 {
		if sum.Lifted < len(sum.Results) {
			fmt.Fprintf(os.Stderr, "hglift: %d of %d binaries did not lift\n",
				len(sum.Results)-sum.Lifted, len(sum.Results))
		}
		if !cfg.keepGoing {
			code = 1
		}
	}
	if code != 0 {
		os.Exit(code)
	}
}

func resolveFunc(im *image.Image, spec string) (uint64, string, error) {
	if addr, err := strconv.ParseUint(spec, 0, 64); err == nil {
		name := fmt.Sprintf("sub_%x", addr)
		if n, ok := im.SymbolName(addr); ok {
			name = n
		}
		return addr, name, nil
	}
	syms := im.FuncSymbols()
	for _, s := range syms {
		if s.Name == spec {
			return s.Value, spec, nil
		}
	}
	return 0, "", fmt.Errorf("hglift: no function %q (have %d symbols)", spec, len(syms))
}

func printStats(s hoare.Stats) {
	fmt.Printf("  instructions=%d states=%d edges=%d resolved=%d unresolved-jumps=%d unresolved-calls=%d\n",
		s.Instructions, s.States, s.Edges, s.ResolvedInd, s.UnresolvedJump, s.UnresolvedCall)
}

func printDetails(fr *core.FuncResult, dump, thy bool) {
	if fr.Graph == nil {
		return
	}
	for _, o := range fr.Graph.Obligations {
		fmt.Printf("  obligation: %s\n", o)
	}
	for _, a := range fr.Graph.Assumptions {
		fmt.Printf("  assumption: %s\n", a)
	}
	if dump {
		fmt.Println(fr.Graph.Dump())
	}
	if thy {
		fmt.Println(triple.ExportTheory(fr.Graph, fr.Name))
	}
}

// disasmLines renders the recovered disassembly in address order — the
// paper's base question 1 ("what instructions are executed") — straight
// from the already-lifted graph.
func disasmLines(g *hoare.Graph) []string {
	addrs := make([]uint64, 0, len(g.Instrs))
	for a := range g.Instrs {
		addrs = append(addrs, a)
	}
	sort.Slice(addrs, func(i, j int) bool { return addrs[i] < addrs[j] })
	out := make([]string, 0, len(addrs))
	for _, a := range addrs {
		inst := g.Instrs[a]
		out = append(out, fmt.Sprintf("%#x: %s", a, inst.String()))
	}
	return out
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hglift:", err)
	os.Exit(1)
}
