// Command hglint statically analyses Hoare graphs for well-formedness:
// structural soundness (dangling edges, terminal out-edges, unreachable
// vertices), memory-model forest invariants (duplicate or necessarily
// overlapping live regions, refuted relations), predicate canonicality
// (return-address clause coverage, bounded indirect control flow) and
// solver-backed clause consistency — the cheap "typechecker" that runs
// before the expensive Step-2 theorem checker.
//
// Usage:
//
//	hglint [-func addr|name] [-hg graph.hg] [-json] [-rules r1,r2] [-list] binary.elf
//
// Without flags the binary is lifted end to end from its entry point and
// every successfully lifted graph is linted. With -func only that
// function is lifted; with -hg a previously exported graph — .hg text or
// the compact binary container, auto-detected by magic — is loaded
// against the binary and linted without lifting. -json emits the
// machine-readable report; -rules restricts the run to a comma-separated
// rule subset; -list prints the rule catalog and exits.
//
// Exit status: 0 when no error-severity diagnostic fired, 1 otherwise
// (or on any I/O failure), 2 on usage errors.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"repro/internal/core"
	"repro/internal/hglint"
	"repro/internal/hgstore"
	"repro/internal/image"
	"repro/internal/solver"
)

func main() {
	funcSpec := flag.String("func", "", "lint a single function: hex address or symbol name")
	hgIn := flag.String("hg", "", "lint a previously exported graph (.hg text or compact binary, auto-detected) against the binary")
	jsonOut := flag.Bool("json", false, "emit machine-readable JSON reports")
	ruleList := flag.String("rules", "", "comma-separated rule subset (default: all)")
	list := flag.Bool("list", false, "print the rule catalog and exit")
	flag.Parse()

	if *list {
		for _, r := range hglint.Rules() {
			fmt.Printf("%-22s %-5s %s\n", r.Name, r.Severity, r.Doc)
		}
		return
	}
	if flag.NArg() != 1 {
		fmt.Fprintln(os.Stderr, "usage: hglint [-func addr|name] [-hg graph.hg] [-json] [-rules r1,r2] [-list] binary.elf")
		os.Exit(2)
	}
	if *hgIn != "" && *funcSpec != "" {
		fmt.Fprintln(os.Stderr, "hglint: -hg and -func are mutually exclusive")
		os.Exit(2)
	}

	data, err := os.ReadFile(flag.Arg(0))
	if err != nil {
		fatal(err)
	}
	im, err := image.Load(data)
	if err != nil {
		fatal(err)
	}

	var opts []hglint.Option
	if *ruleList != "" {
		opts = append(opts, hglint.Only(strings.Split(*ruleList, ",")...))
	}
	// One shared memo cache across the graphs of a binary: lint queries
	// repeat heavily for stack-relative regions.
	opts = append(opts, hglint.WithCache(solver.NewCache()))

	reports, skipped := collect(im, *hgIn, *funcSpec, opts)
	errors := 0
	for _, rep := range reports {
		errors += rep.Errors()
		if *jsonOut {
			fmt.Printf("%s\n", rep.JSON())
		} else {
			fmt.Print(rep)
		}
	}
	for _, s := range skipped {
		fmt.Fprintln(os.Stderr, "hglint:", s)
	}
	if errors > 0 {
		os.Exit(1)
	}
}

// collect produces the lint reports for the requested mode, plus notes
// about graphs that could not be linted (failed lifts).
func collect(im *image.Image, hgIn, funcSpec string, opts []hglint.Option) ([]*hglint.Report, []string) {
	if hgIn != "" {
		hg, err := os.ReadFile(hgIn)
		if err != nil {
			fatal(err)
		}
		g, err := hgstore.LoadGraph(im, hg)
		if err != nil {
			fatal(err)
		}
		return []*hglint.Report{hglint.Lint(g, opts...)}, nil
	}

	l := core.New(im, core.DefaultConfig())
	if funcSpec != "" {
		addr, name, err := resolveFunc(im, funcSpec)
		if err != nil {
			fatal(err)
		}
		fr := l.LiftFuncCtx(context.Background(), addr, name)
		if fr.Status != core.StatusLifted || fr.Graph == nil {
			fatal(fmt.Errorf("lift %s: %s %v", name, fr.Status, fr.Reasons))
		}
		return []*hglint.Report{hglint.Lint(fr.Graph, opts...)}, nil
	}

	br := l.LiftBinaryCtx(context.Background(), "binary")
	var reports []*hglint.Report
	var skipped []string
	for _, fr := range br.Funcs {
		if fr.Status != core.StatusLifted || fr.Graph == nil {
			skipped = append(skipped, fmt.Sprintf("%s: not lifted (%s) — skipped", fr.Name, fr.Status))
			continue
		}
		reports = append(reports, hglint.Lint(fr.Graph, opts...))
	}
	if len(reports) == 0 {
		fatal(fmt.Errorf("binary: no lifted graph to lint (status %s)", br.Status))
	}
	return reports, skipped
}

func resolveFunc(im *image.Image, spec string) (uint64, string, error) {
	if addr, err := strconv.ParseUint(spec, 0, 64); err == nil {
		name := fmt.Sprintf("sub_%x", addr)
		if n, ok := im.SymbolName(addr); ok {
			name = n
		}
		return addr, name, nil
	}
	for _, s := range im.FuncSymbols() {
		if s.Name == spec {
			return s.Value, spec, nil
		}
	}
	return 0, "", fmt.Errorf("hglint: no function %q", spec)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "hglint:", err)
	os.Exit(1)
}
