// Command xenbench regenerates every table and figure of the paper's
// evaluation (Section 5) on the synthetic corpus:
//
//	-table1    Table 1  — Xen-shaped case study statistics per directory
//	-table2    Table 2  — CoreUtils-shaped binaries exported & proven (Step 2)
//	-fig3      Figure 3 — per-function verification time vs instruction count
//	-weird     Section 2 — the weird-edge binary's Hoare graph
//	-failures  Section 5.3 — the three failure case studies
//	-ptrbench  pointer pre-pass benchmark over the ptr_ pathological directory
//	-all       everything above except -ptrbench (which is a benchmark, not
//	           a paper artifact; run it explicitly, with and without -ptr)
//
// -scale shrinks the Table 1 unit counts (1.0 = the paper's 63 binaries
// and 2151 library functions; the default keeps runtimes laptop-friendly).
//
// -jobs N fans the lifts of each sweep out across N pipeline workers
// (default: all CPUs). Lifts are context-free and mutually independent, so
// every count is identical at any job count; only wall time changes. All
// workers share one solver memo cache, and the tables report its per-row
// hit-rate ("Hit%") next to the per-directory wall time.
//
// -workers N distributes Table 2's Step-2 re-verification across N worker
// subprocesses through internal/dist (0 = single-process, the default).
// Verdicts are merged deterministically, so the printed table is
// byte-identical at any worker count; only wall time changes.
//
// -ptr enables the pointer-analysis pre-pass on every lift: per-function
// fact tables of proven region relations and separation hypotheses answer
// pointer comparisons before the decision procedure, so undecided pairs
// stop forking the memory model. Incompatible with -workers > 0 (the
// worker wire protocol does not ship fact tables); Step 2 in-process
// recomputes each function's facts so re-checks see the same verdicts the
// lift did.
//
// Robustness flags make long sweeps survivable:
//
//	-timeout d         per-lift wall-clock budget (0 = none)
//	-retries N         attempts per lift (retries panicked/timed-out lifts)
//	-retry-backoff d   delay before the first retry (doubles per retry)
//	-checkpoint f      journal completed lifts to f (crash-safe, atomic)
//	-resume            restore completed lifts from -checkpoint instead of
//	                   truncating it; only the remainder is lifted
//	-store f           cache lifted Hoare graphs in the content-addressed
//	                   store at f; a warm re-run decodes instead of lifting
//	                   (stderr reports the hit/miss split)
//	-keep-going        exit 0 even when lifts panicked, timed out, errored,
//	                   were cancelled or were quarantined
//
// The run stops cleanly on SIGINT/SIGTERM: in-flight lifts report
// cancelled, the trace and metrics still flush, and the exit status is
// non-zero (unless -keep-going). Checkpointing covers the lift sweeps
// (-table1, -fig3); Step 2 re-checks graphs in memory and is not
// journalled.
//
// The -fault-* flags drive the deterministic fault injector (CI's
// fault-injection smoke job; never needed in normal runs):
//
//	-fault-seed N     decision seed
//	-fault-panic p    probability a lift attempt panics
//	-fault-stall p    probability a lift attempt stalls until the watchdog
//
// -trace out.jsonl writes every lift/solver/memory-model event of the run
// as JSONL; -metrics prints the aggregated metrics registry after the last
// table.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"runtime"
	"sort"
	"syscall"
	"time"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/dist"
	"repro/internal/faultinject"
	"repro/internal/hoare"
	"repro/internal/obs"
	"repro/internal/ptr"
	"repro/internal/sem"
	"repro/internal/solver"
	"repro/internal/triple"
	"repro/internal/x86"
	"repro/lift"
)

// runner carries the per-run tuning shared by every sweep plus the health
// counters that decide the exit status.
type runner struct {
	jobs    int
	workers int
	timeout time.Duration
	retry   lift.RetryPolicy
	ckpt    *lift.Checkpoint
	store   *lift.Store
	flip    string
	ptr     bool
	faults  *faultinject.Injector
	tr      *obs.Tracer

	panics, timeouts, errors, cancelled, quarantined int
	storeHits, storeMisses                           int
}

// opts assembles the facade options for one sweep; scope namespaces the
// checkpoint journal so equal task names across sweeps do not collide.
func (rn *runner) opts(scope string) []lift.Option {
	opts := []lift.Option{
		lift.Jobs(rn.jobs), lift.Timeout(rn.timeout),
		lift.Tracer(rn.tr), lift.Retry(rn.retry), lift.Faults(rn.faults),
	}
	if rn.ckpt != nil {
		opts = append(opts, lift.WithCheckpoint(rn.ckpt.Scoped(scope)))
	}
	if rn.store != nil {
		opts = append(opts, lift.WithStore(rn.store))
	}
	if rn.ptr {
		opts = append(opts, lift.PointerFacts())
	}
	return opts
}

// absorb folds one Summary's infrastructure outcomes into the health
// counters. Unprovable and concurrency results are analysis outcomes, not
// failures — Table 1 reports them as its x and y columns.
func (rn *runner) absorb(sum *lift.Summary) {
	rn.panics += sum.Panics
	rn.timeouts += sum.Timeouts
	rn.errors += sum.Errors
	rn.cancelled += sum.Cancelled
	rn.quarantined += sum.Quarantined
	rn.storeHits += sum.StoreHits
	rn.storeMisses += sum.StoreMisses
}

// healthy reports whether every lift completed without infrastructure
// trouble.
func (rn *runner) healthy() bool {
	return rn.panics == 0 && rn.timeouts == 0 && rn.errors == 0 &&
		rn.cancelled == 0 && rn.quarantined == 0
}

func main() {
	dist.MaybeWorker()
	table1 := flag.Bool("table1", false, "regenerate Table 1")
	table2 := flag.Bool("table2", false, "regenerate Table 2")
	fig3 := flag.Bool("fig3", false, "regenerate Figure 3")
	weird := flag.Bool("weird", false, "regenerate the Section 2 example")
	failures := flag.Bool("failures", false, "regenerate the Section 5.3 failures")
	ptrBench := flag.Bool("ptrbench", false, "run the pointer pre-pass benchmark (pathological ptr_ directory)")
	all := flag.Bool("all", false, "run everything")
	scale := flag.Float64("scale", 0.15, "Table 1 corpus scale (1.0 = paper size)")
	seed := flag.Int64("seed", 1, "corpus generation seed")
	jobs := flag.Int("jobs", runtime.NumCPU(), "parallel lift workers (1 = serial)")
	workers := flag.Int("workers", 0, "Step-2 worker subprocesses for -table2 (0 = single-process)")
	timeout := flag.Duration("timeout", 0, "per-lift wall-clock budget (0 = none)")
	retries := flag.Int("retries", 1, "attempts per lift (>1 retries panicked/timed-out lifts)")
	retryBackoff := flag.Duration("retry-backoff", 0, "delay before the first retry (doubles per retry)")
	ckptPath := flag.String("checkpoint", "", "journal completed lifts to this file")
	resume := flag.Bool("resume", false, "restore completed lifts from -checkpoint instead of truncating")
	storePath := flag.String("store", "", "cache lifted Hoare graphs in the store at this file")
	ptrFacts := flag.Bool("ptr", false, "run the pointer-analysis pre-pass before each lift")
	flipUnit := flag.String("flip", "", "flip one immediate byte in the named corpus unit's function before lifting (store-invalidation smoke)")
	keepGoing := flag.Bool("keep-going", false, "exit 0 even when lifts panicked, timed out, errored or were quarantined")
	faultSeed := flag.Int64("fault-seed", 0, "fault injector decision seed (CI smoke)")
	faultPanic := flag.Float64("fault-panic", 0, "probability a lift attempt panics (CI smoke)")
	faultStall := flag.Float64("fault-stall", 0, "probability a lift attempt stalls until the watchdog (CI smoke)")
	traceOut := flag.String("trace", "", "write a JSONL event trace to this file")
	showMetrics := flag.Bool("metrics", false, "print the aggregated metrics registry on exit")
	flag.Parse()

	if *all {
		*table1, *table2, *fig3, *weird, *failures = true, true, true, true, true
	}
	if !*table1 && !*table2 && !*fig3 && !*weird && !*failures && !*ptrBench {
		fmt.Fprintln(os.Stderr,
			"xenbench: nothing selected: pass at least one of -table1, -table2, -fig3, -weird, -failures, -ptrbench, or -all\n"+
				"(-scale, -seed and -jobs only tune a selected run)")
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *ckptPath == "" {
		fmt.Fprintln(os.Stderr, "xenbench: -resume requires -checkpoint")
		os.Exit(2)
	}
	if *ptrFacts && *workers > 0 {
		fmt.Fprintln(os.Stderr, "xenbench: -ptr is incompatible with -workers > 0 (the Step-2 worker protocol does not ship fact tables)")
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	var sinks []obs.Sink
	var jsonl *obs.JSONL
	var traceFile *os.File
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fatal(err)
		}
		traceFile = f
		jsonl = obs.NewJSONL(f)
		sinks = append(sinks, jsonl)
	}
	var metrics *obs.Metrics
	if *showMetrics {
		metrics = obs.NewMetrics()
		sinks = append(sinks, metrics)
	}
	rn := &runner{
		jobs:    *jobs,
		workers: *workers,
		timeout: *timeout,
		retry:   lift.RetryPolicy{MaxAttempts: *retries, Backoff: *retryBackoff},
		// tr is nil when no sink is selected: every emission site reduces
		// to one pointer check.
		tr: obs.NewTracer(sinks...),
	}
	if *faultPanic > 0 || *faultStall > 0 {
		rn.faults = faultinject.New(faultinject.Config{
			Seed: *faultSeed, PanicRate: *faultPanic, StallRate: *faultStall,
		})
	}
	if *ckptPath != "" {
		if !*resume {
			if err := os.Remove(*ckptPath); err != nil && !os.IsNotExist(err) {
				fatal(err)
			}
		}
		var err error
		rn.ckpt, err = lift.OpenCheckpoint(*ckptPath)
		if err != nil {
			fatal(err)
		}
		if n := rn.ckpt.Skipped(); n > 0 {
			fmt.Fprintf(os.Stderr, "xenbench: checkpoint: dropped %d unparseable journal lines\n", n)
		}
		if n := rn.ckpt.Len(); n > 0 {
			fmt.Fprintf(os.Stderr, "xenbench: checkpoint: restoring %d completed lifts\n", n)
		}
	}
	if *storePath != "" {
		st, err := lift.OpenStore(*storePath)
		if err != nil {
			fatal(err)
		}
		if n := st.Dropped(); n > 0 {
			fmt.Fprintf(os.Stderr, "xenbench: store: dropped %d corrupt or stale-version records\n", n)
		}
		rn.store = st
	}
	rn.flip = *flipUnit
	rn.ptr = *ptrFacts

	if *table1 {
		runTable1(ctx, *scale, *seed, rn)
	}
	if *table2 {
		runTable2(ctx, rn)
	}
	if *fig3 {
		runFig3(ctx, *scale, *seed, rn)
	}
	if *weird {
		runWeird(ctx, rn.tr)
	}
	if *failures {
		runFailures(ctx, rn.tr)
	}
	if *ptrBench {
		runPtrBench(ctx, rn)
	}

	// One exit point: the trace and metrics flush on every path —
	// including a SIGINT-cancelled run — before the status is decided.
	code := 0
	if jsonl != nil {
		if err := jsonl.Err(); err != nil {
			fmt.Fprintln(os.Stderr, "xenbench: trace:", err)
			code = 1
		}
		traceFile.Close()
	}
	if metrics != nil {
		fmt.Print(metrics.Dump())
	}
	if err := rn.ckpt.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "xenbench: checkpoint:", err)
		code = 1
	}
	if rn.store != nil {
		fmt.Fprintf(os.Stderr, "xenbench: store: hits=%d misses=%d\n", rn.storeHits, rn.storeMisses)
	}
	if !rn.healthy() {
		fmt.Fprintf(os.Stderr,
			"xenbench: unhealthy run: %d panics, %d timeouts, %d errors, %d cancelled, %d quarantined\n",
			rn.panics, rn.timeouts, rn.errors, rn.cancelled, rn.quarantined)
		if !*keepGoing {
			code = 1
		}
	}
	os.Exit(code)
}

// dirResult accumulates one Table 1 row.
type dirResult struct {
	name                          string
	kind                          corpus.UnitKind
	lifted, unprov, conc, timeout int
	stats                         hoare.Stats
	queries, hits                 uint64
	elapsed                       time.Duration
	times                         []funcTime // for Figure 3
}

type funcTime struct {
	instrs int
	d      time.Duration
}

// hitRate renders the row's solver memo hit-rate.
func (r *dirResult) hitRate() string {
	if r.queries == 0 {
		return "-"
	}
	return fmt.Sprintf("%.0f%%", 100*float64(r.hits)/float64(r.queries))
}

// liftDirectory generates one Table 1 directory and lifts every unit
// through the pipeline; scope namespaces the checkpoint journal.
func liftDirectory(ctx context.Context, shape corpus.DirShape, seed int64, scope string, cache *solver.Cache, rn *runner) (*dirResult, error) {
	dir, err := corpus.BuildDirectory(shape, seed)
	if err != nil {
		return nil, err
	}
	if rn.flip != "" {
		for _, u := range dir.Units {
			if u.Name != rn.flip {
				continue
			}
			fn, err := corpus.FlipUnit(u)
			if err != nil {
				return nil, err
			}
			fmt.Fprintf(os.Stderr, "xenbench: flipped one immediate in %s/%s\n", u.Name, fn)
		}
	}
	opts := append(rn.opts(scope), lift.Cache(cache))
	sum := lift.Run(ctx, lift.UnitRequests(dir.Units), opts...)
	rn.absorb(sum)
	res := &dirResult{name: shape.Name, kind: shape.Kind, elapsed: sum.Wall}
	for _, r := range sum.Results {
		res.queries += r.Stats.Sem.SolverQueries
		res.hits += r.Stats.Sem.SolverHits
		switch r.Status {
		case core.StatusLifted:
			res.lifted++
			res.stats.Add(r.Stats.Graph)
			res.times = append(res.times, funcTime{instrs: r.Stats.Graph.Instructions, d: r.Stats.Wall})
		case core.StatusUnprovableRet, core.StatusError, core.StatusPanic:
			res.unprov++
		case core.StatusConcurrency:
			res.conc++
		case core.StatusTimeout:
			res.timeout++
		}
	}
	return res, nil
}

func runTable1(ctx context.Context, scale float64, seed int64, rn *runner) {
	fmt.Printf("Table 1: Xen-shaped case study (scale %.2f, %d jobs)\n", scale, rn.jobs)
	fmt.Printf("%-16s %-22s %9s %9s %6s %5s %5s %6s %10s\n",
		"Directory", "w+x+y+z", "Instrs", "States", "A", "B", "C", "Hit%", "Time")
	cache := solver.NewCache()
	var totals [2]dirResult
	for _, shape := range corpus.XenSuite(scale) {
		res, err := liftDirectory(ctx, shape, seed, "table1/"+shape.Name, cache, rn)
		if err != nil {
			fatal(err)
		}
		printRow(res)
		t := &totals[0]
		if res.kind == corpus.KindLibFunc {
			t = &totals[1]
		}
		t.lifted += res.lifted
		t.unprov += res.unprov
		t.conc += res.conc
		t.timeout += res.timeout
		t.stats.Add(res.stats)
		t.queries += res.queries
		t.hits += res.hits
		t.elapsed += res.elapsed
	}
	totals[0].name = "Total (binaries)"
	totals[1].name = "Total (lib funcs)"
	printRow(&totals[0])
	printRow(&totals[1])
	fmt.Println("w lifted, x unprovable return address, y concurrency, z timeout")
	fmt.Println("A resolved indirections, B unresolved jumps, C unresolved calls")
	cs := cache.Stats()
	fmt.Printf("solver memo: %d queries, %d hits (%.0f%%), %d entries\n",
		cs.Queries, cs.Hits, 100*cs.HitRate(), cs.Entries)
	fmt.Println()
}

func printRow(r *dirResult) {
	total := r.lifted + r.unprov + r.conc + r.timeout
	wxyz := fmt.Sprintf("%d = %d+%d+%d+%d", total, r.lifted, r.unprov, r.conc, r.timeout)
	fmt.Printf("%-16s %-22s %9d %9d %6d %5d %5d %6s %10s\n",
		r.name, wxyz, r.stats.Instructions, r.stats.States,
		r.stats.ResolvedInd, r.stats.UnresolvedJump, r.stats.UnresolvedCall,
		r.hitRate(), r.elapsed.Round(time.Millisecond))
}

func runTable2(ctx context.Context, rn *runner) {
	fmt.Printf("Table 2: CoreUtils-shaped binaries exported and proven (Step 2, %d jobs)\n", rn.jobs)
	fmt.Printf("%-10s %13s %14s %10s %10s %8s %8s\n",
		"Binary", "#Instructions", "#Indirections", "Proven", "Assumed", "Failed", "Skipped")
	units, err := corpus.CoreUtilsSuite(1.0)
	if err != nil {
		fatal(err)
	}
	reqs := make([]lift.Request, 0, len(units))
	for _, u := range units {
		reqs = append(reqs, lift.Binary(u.Name, u.Image))
	}
	// Step 2 re-checks graphs in memory, so Table 2 lifts without a
	// checkpoint (a restored result carries no graph to check).
	t2opts := []lift.Option{
		lift.Jobs(rn.jobs), lift.Timeout(rn.timeout),
		lift.Tracer(rn.tr), lift.Retry(rn.retry), lift.Faults(rn.faults),
	}
	if rn.ptr {
		t2opts = append(t2opts, lift.PointerFacts())
	}
	sum := lift.Run(ctx, reqs, t2opts...)
	rn.absorb(sum)

	// With -workers the Step-2 checks of every lifted function go through
	// the dist coordinator in one batch (so solver batching and load
	// balancing see the whole corpus); the reports come back in unit
	// order, which is exactly the order the print loop below consumes
	// them in. Worker chatter stays on stderr: the printed table is
	// byte-identical to the single-process run.
	var distReports []*triple.Report
	if rn.workers > 0 {
		var dus []dist.Unit
		for i, r := range sum.Results {
			if r.Status != core.StatusLifted || r.Binary == nil {
				continue
			}
			for _, fr := range r.Binary.Funcs {
				dus = append(dus, dist.Unit{
					Name:  fmt.Sprintf("%s/%s", r.Name, fr.Name),
					Img:   units[i].Image,
					Graph: fr.Graph,
				})
			}
		}
		fmt.Fprintf(os.Stderr, "xenbench: distributing %d Step-2 checks across %d workers\n",
			len(dus), rn.workers)
		var err error
		distReports, err = dist.Check(ctx, dus, dist.Options{
			Workers: rn.workers,
			Cfg:     sem.DefaultConfig(),
			Retry:   rn.retry,
			Timeout: rn.timeout,
			Tracer:  rn.tr,
		})
		if err != nil {
			fatal(err)
		}
	}

	var sumI, sumInd, sumP, sumA, sumF, sumS int
	next := 0
	for i, r := range sum.Results {
		if r.Status != core.StatusLifted || r.Binary == nil {
			fmt.Printf("%-10s NOT LIFTED: %s\n", r.Name, r.Status)
			continue
		}
		var proven, assumed, failed, skipped int
		for _, fr := range r.Binary.Funcs {
			var rep *triple.Report
			if rn.workers > 0 {
				rep = distReports[next]
				next++
			} else {
				cfg := sem.DefaultConfig()
				if rn.ptr {
					// Re-check under the same facts the lift explored
					// with, so Step 2 reproduces the lift's verdicts.
					cfg.Facts = ptr.Analyze(units[i].Image, fr.Addr).Facts
				}
				rep = triple.Check(ctx, units[i].Image, fr.Graph, cfg,
					triple.Workers(rn.jobs), triple.WithTracer(rn.tr))
			}
			proven += rep.Proven
			assumed += rep.Assumed
			failed += rep.Failed
			skipped += rep.Skipped
		}
		fmt.Printf("%-10s %13d %14d %10d %10d %8d %8d\n",
			r.Name, r.Stats.Graph.Instructions, r.Stats.Graph.ResolvedInd,
			proven, assumed, failed, skipped)
		sumI += r.Stats.Graph.Instructions
		sumInd += r.Stats.Graph.ResolvedInd
		sumP += proven
		sumA += assumed
		sumF += failed
		sumS += skipped
	}
	fmt.Printf("%-10s %13d %14d %10d %10d %8d %8d\n", "Total", sumI, sumInd, sumP, sumA, sumF, sumS)
	cs := sum.Cache.Stats()
	fmt.Printf("lift wall time %s; solver memo %.0f%% of %d queries\n",
		sum.Wall.Round(time.Millisecond), 100*cs.HitRate(), cs.Queries)
	fmt.Println()
}

func runFig3(ctx context.Context, scale float64, seed int64, rn *runner) {
	fmt.Println("Figure 3: verification time vs instruction count")
	// A dedicated sweep across function sizes: 10 functions per size
	// class, scaled by -scale.
	res := &dirResult{}
	cache := solver.NewCache()
	perClass := int(10*scale + 0.5)
	if perClass < 2 {
		perClass = 2
	}
	for _, stmts := range []int{2, 4, 8, 12, 16, 24, 32, 48} {
		shape := corpus.DirShape{
			Name: "fig3", Kind: corpus.KindLibFunc, Lifted: perClass,
			MinStmts: stmts, MaxStmts: stmts, Helpers: 1,
		}
		scope := fmt.Sprintf("fig3/%d", stmts)
		r, err := liftDirectory(ctx, shape, seed+int64(stmts), scope, cache, rn)
		if err != nil {
			fatal(err)
		}
		res.times = append(res.times, r.times...)
	}
	sort.Slice(res.times, func(i, j int) bool { return res.times[i].instrs < res.times[j].instrs })
	fmt.Println("instructions,microseconds")
	for _, ft := range res.times {
		fmt.Printf("%d,%d\n", ft.instrs, ft.d.Microseconds())
	}
	// The paper's observation: very little correlation between size and
	// time. Report the rank statistics.
	if n := len(res.times); n > 4 {
		half := n / 2
		var smallT, largeT time.Duration
		for i, ft := range res.times {
			if i < half {
				smallT += ft.d
			} else {
				largeT += ft.d
			}
		}
		fmt.Printf("# mean time, smaller half: %s; larger half: %s\n",
			(smallT / time.Duration(half)).Round(time.Microsecond),
			(largeT / time.Duration(n-half)).Round(time.Microsecond))
	}
	fmt.Println()
}

func runWeird(ctx context.Context, tr *obs.Tracer) {
	fmt.Println("Section 2: the weird-edge binary")
	s, err := corpus.WeirdEdge()
	if err != nil {
		fatal(err)
	}
	cfg := core.DefaultConfig()
	cfg.Sem.Tracer = tr.WithLift(s.Name)
	l := core.New(s.Image, cfg)
	r := l.LiftFuncCtx(ctx, s.FuncAddr, s.Name)
	st := r.Stats()
	fmt.Printf("status=%s instrs=%d states=%d resolved=%d weird-vertices=%d\n",
		r.Status, st.Instructions, st.States, st.ResolvedInd, st.WeirdVertices)
	for _, e := range r.Graph.SortedEdges() {
		label := e.Inst.String()
		marker := ""
		if e.Inst.Mn == x86.JMP && len(e.Inst.Ops) == 1 && e.Inst.Ops[0].Kind == x86.OpMem {
			if vs := r.Graph.Vertices[e.To]; vs != nil && vs.Addr == s.FuncAddr+1 {
				marker = "   <-- WEIRD EDGE (hidden ret gadget)"
			}
		}
		fmt.Printf("  %s -> %s : %s%s\n", e.From, e.To, label, marker)
	}
	rep := triple.Check(ctx, s.Image, r.Graph, sem.DefaultConfig(),
		triple.Workers(2), triple.WithTracer(tr))
	fmt.Printf("Step 2: %d proven, %d assumed, %d failed\n", rep.Proven, rep.Assumed, rep.Failed)
	fmt.Println()
}

func runFailures(ctx context.Context, tr *obs.Tracer) {
	fmt.Println("Section 5.3: failure case studies")
	scenarios := []func() (*corpus.Scenario, error){
		corpus.Ret2Win, corpus.StackProbe, corpus.NonStdRSP, corpus.Overflow,
	}
	for _, f := range scenarios {
		s, err := f()
		if err != nil {
			fatal(err)
		}
		cfg := core.DefaultConfig()
		cfg.Sem.Tracer = tr.WithLift(s.Name)
		l := core.New(s.Image, cfg)
		r := l.LiftFuncCtx(ctx, s.FuncAddr, s.Name)
		fmt.Printf("%-12s status=%s\n", s.Name, r.Status)
		fmt.Printf("             %s\n", s.Describe)
		for _, reason := range r.Reasons {
			fmt.Printf("             reason: %s\n", reason)
		}
		if r.Graph != nil {
			for _, o := range r.Graph.Obligations {
				fmt.Printf("             obligation: %s\n", o)
			}
		}
	}
	fmt.Println()
}

// runPtrBench lifts the pathological ptr_ directory, whose units scale up
// the Section 2 aliasing idiom until fork/destroy dominates. Run it twice —
// without and with -ptr — and compare: the counters line quantifies the
// pre-pass's fork+destroy reduction, and the verdict lines (deliberately
// free of timings) let CI diff the two runs byte-for-byte on the functions
// both modes lift. Without -ptr the forkbomb unit times out by design, so
// the factless run needs -keep-going to exit 0.
func runPtrBench(ctx context.Context, rn *runner) {
	mode := "off"
	if rn.ptr {
		mode = "on"
	}
	fmt.Printf("Pointer pre-pass benchmark (ptr facts %s, %d jobs)\n", mode, rn.jobs)
	dir, err := corpus.PtrPathology()
	if err != nil {
		fatal(err)
	}
	sum := lift.Run(ctx, lift.UnitRequests(dir.Units), rn.opts("ptrbench")...)
	rn.absorb(sum)
	for _, r := range sum.Results {
		fmt.Printf("verdict %s %s\n", r.Name, r.Status)
	}
	fmt.Printf("counters forks=%d destroys=%d fallbacks=%d facthits=%d\n",
		sum.Stats.Sem.Forks, sum.Stats.Sem.Destroys,
		sum.Stats.Sem.Fallbacks, sum.Stats.Sem.FactHits)
	fmt.Printf("wall %s\n", sum.Wall.Round(time.Millisecond))
	fmt.Println()
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "xenbench:", err)
	os.Exit(1)
}
