// Command reprovet is a go vet -vettool driver for the repo's custom
// analyzers (internal/analysis): ctxless, exprnew, obsnil, and pkgdoc. It reimplements
// the small slice of the x/tools unitchecker protocol that cmd/go
// speaks, on the standard library alone, so the repo stays free of
// external dependencies.
//
// The protocol: cmd/go probes the tool with -V=full (version for the
// build cache key) and -flags (supported analyzer flags, JSON), then
// invokes it once per package with a JSON config file argument naming
// the source files, the import map, and the compiler export data of
// every dependency. The tool typechecks the package from that config,
// runs the analyzers, prints findings as file:line:col: messages, and
// exits non-zero if any fired.
//
// Usage (normally via scripts/check.sh):
//
//	go build -o reprovet ./cmd/reprovet
//	go vet -vettool=$(pwd)/reprovet ./...
package main

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"repro/internal/analysis"
)

// Config mirrors the fields of the unitchecker config JSON that cmd/go
// writes for each package. Unknown fields are ignored.
type Config struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoVersion                 string
	GoFiles                   []string
	NonGoFiles                []string
	IgnoredFiles              []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	Standard                  map[string]bool
	PackageVetx               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

func main() {
	args := os.Args[1:]
	for _, a := range args {
		switch a {
		case "-V=full":
			// cmd/go keys its cache on this line; bump the version when
			// analyzer behaviour changes to invalidate cached results.
			fmt.Println("reprovet version v1.4.0")
			return
		case "-flags":
			fmt.Println("[]")
			return
		}
	}
	if len(args) != 1 || !strings.HasSuffix(args[0], ".cfg") {
		fmt.Fprintln(os.Stderr, "usage: go vet -vettool=reprovet ./... (reprovet is not run directly)")
		os.Exit(2)
	}
	data, err := os.ReadFile(args[0])
	if err != nil {
		fatal(err)
	}
	var cfg Config
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatal(err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			typecheckFailed(&cfg, err)
		}
		files = append(files, f)
	}

	// Dependencies come as compiler export data: resolve the vendored/
	// canonical path through ImportMap, then the .a/.x file through
	// PackageFile.
	imp := importer.ForCompiler(fset, cfg.Compiler, func(path string) (io.ReadCloser, error) {
		canon := path
		if m, ok := cfg.ImportMap[path]; ok {
			canon = m
		}
		file, ok := cfg.PackageFile[canon]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	})
	info := &types.Info{
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Types:      map[ast.Expr]types.TypeAndValue{},
	}
	tc := &types.Config{Importer: imp, Sizes: types.SizesFor("gc", "amd64")}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	if err != nil {
		typecheckFailed(&cfg, err)
	}

	// The facts file must exist even when empty — dependents' runs list
	// it in PackageVetx and cmd/go checks it into the build cache.
	writeVetx(&cfg)
	if cfg.VetxOnly {
		return
	}

	pass := &analysis.Pass{Fset: fset, Files: files, Pkg: pkg, Info: info}
	diags := analysis.Run(pass, analysis.All())
	for _, d := range diags {
		fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", fset.Position(d.Pos), d.Msg, d.Analyzer)
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

func writeVetx(cfg *Config) {
	if cfg.VetxOutput == "" {
		return
	}
	if err := os.WriteFile(cfg.VetxOutput, []byte("reprovet-facts-v1\n"), 0o666); err != nil {
		fatal(err)
	}
}

// typecheckFailed ends the run after a parse or type error. cmd/go
// normally asks vet tools to succeed in that case (the compiler will
// report the real error with better context), but the facts file still
// has to be written or dependent packages fail on the missing input.
func typecheckFailed(cfg *Config, err error) {
	writeVetx(cfg)
	if cfg.SucceedOnTypecheckFailure {
		os.Exit(0)
	}
	fatal(fmt.Errorf("typecheck %s: %v", cfg.ImportPath, err))
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "reprovet:", err)
	os.Exit(1)
}
