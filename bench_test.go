package repro

// The benchmark harness regenerates every table and figure of the paper's
// evaluation (Section 5):
//
//	BenchmarkTable1_*    — per-directory lifting of the Xen-shaped corpus
//	BenchmarkTable2_*    — per-binary Step 1 + Step 2 of the CoreUtils corpus
//	BenchmarkFigure3_*   — lifting time across function sizes
//	BenchmarkWeirdEdge   — the Section 2 example
//	BenchmarkFailures    — the Section 5.3 rejections
//	BenchmarkAblation*   — the design-choice ablations called out in DESIGN.md
//
// cmd/xenbench prints the corresponding tables; the benchmarks measure the
// same pipelines under testing.B. Corpora are generated once per process.
// Corpus lifts go through the pipeline scheduler exactly as cmd/xenbench
// does; the Table 1 benchmarks run at one worker so per-directory numbers
// stay comparable across machines, with a _parallel variant measuring the
// pool at runtime.NumCPU().

import (
	"context"
	"path/filepath"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/corpus"
	"repro/internal/expr"
	"repro/internal/memmodel"
	"repro/internal/pred"
	"repro/internal/ptr"
	"repro/internal/sem"
	"repro/internal/solver"
	"repro/internal/triple"
	"repro/lift"
)

// benchScale keeps per-iteration work benchmark-friendly; cmd/xenbench
// runs the full-size corpus.
const benchScale = 0.01

var (
	benchDirs     map[string]*corpus.Directory
	benchDirsOnce sync.Once

	benchCU     []*corpus.Unit
	benchCUOnce sync.Once
)

func table1Dirs(b *testing.B) map[string]*corpus.Directory {
	b.Helper()
	benchDirsOnce.Do(func() {
		benchDirs = map[string]*corpus.Directory{}
		for _, shape := range corpus.XenSuite(benchScale) {
			dir, err := corpus.BuildDirectory(shape, 1)
			if err != nil {
				panic(err)
			}
			benchDirs[shape.Name] = dir
		}
	})
	return benchDirs
}

func coreutils(b *testing.B) []*corpus.Unit {
	b.Helper()
	benchCUOnce.Do(func() {
		units, err := corpus.CoreUtilsSuite(0.12)
		if err != nil {
			panic(err)
		}
		benchCU = units
	})
	return benchCU
}

// liftDir lifts every unit of a directory once through the facade (which
// honours each unit's step budget via lift.UnitRequests).
func liftDir(b *testing.B, dir *corpus.Directory, jobs int) *lift.Summary {
	b.Helper()
	sum := lift.Run(context.Background(), lift.UnitRequests(dir.Units), lift.Jobs(jobs))
	if sum.Panics != 0 {
		b.Fatalf("%d lifts panicked", sum.Panics)
	}
	return sum
}

func benchDir(b *testing.B, name string, jobs int) {
	dir := table1Dirs(b)[name]
	if dir == nil {
		b.Fatalf("no directory %q", name)
	}
	var sum *lift.Summary
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum = liftDir(b, dir, jobs)
	}
	// Solver memo effectiveness of the last iteration's run, for the
	// BENCH_*.json trajectory (scripts/bench.sh).
	b.ReportMetric(100*sum.Cache.Stats().HitRate(), "hit%")
}

func BenchmarkTable1_bin(b *testing.B)          { benchDir(b, "bin", 1) }
func BenchmarkTable1_xenbin(b *testing.B)       { benchDir(b, "xen/bin", 1) }
func BenchmarkTable1_libexec(b *testing.B)      { benchDir(b, "libexec", 1) }
func BenchmarkTable1_sbin(b *testing.B)         { benchDir(b, "sbin", 1) }
func BenchmarkTable1_lib(b *testing.B)          { benchDir(b, "lib", 1) }
func BenchmarkTable1_xenfsimage(b *testing.B)   { benchDir(b, "xenfsimage", 1) }
func BenchmarkTable1_distpackages(b *testing.B) { benchDir(b, "dist-packages", 1) }
func BenchmarkTable1_lowlevel(b *testing.B)     { benchDir(b, "lowlevel", 1) }

// BenchmarkTable1_lib_parallel measures the pipeline's speed-up on the
// largest directory with the pool at full width.
func BenchmarkTable1_lib_parallel(b *testing.B) { benchDir(b, "lib", runtime.NumCPU()) }

// BenchmarkTable1_lib_warmstore re-runs the largest directory against a
// pre-populated Hoare-graph store (internal/hgstore): every task must hit,
// so the timed loop performs zero lifts and the ratio to
// BenchmarkTable1_lib is the incremental-lifting payoff recorded in
// BENCH_PR7.json.
func BenchmarkTable1_lib_warmstore(b *testing.B) {
	dir := table1Dirs(b)["lib"]
	st, err := lift.OpenStore(filepath.Join(b.TempDir(), "graphs.hgcs"))
	if err != nil {
		b.Fatal(err)
	}
	cold := lift.Run(context.Background(), lift.UnitRequests(dir.Units),
		lift.Jobs(1), lift.WithStore(st))
	if cold.Panics != 0 {
		b.Fatalf("%d lifts panicked", cold.Panics)
	}
	var sum *lift.Summary
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum = lift.Run(context.Background(), lift.UnitRequests(dir.Units),
			lift.Jobs(1), lift.WithStore(st))
		if sum.StoreMisses != 0 {
			b.Fatalf("warm run lifted: %d misses over %d units",
				sum.StoreMisses, len(dir.Units))
		}
	}
	b.ReportMetric(float64(sum.StoreHits), "hits")
}

// benchTable2 lifts one CoreUtils-shaped binary and proves every vertex —
// the full Step 1 + Step 2 pipeline of Table 2.
func benchTable2(b *testing.B, name string) {
	var unit *corpus.Unit
	for _, u := range coreutils(b) {
		if u.Name == name {
			unit = u
		}
	}
	if unit == nil {
		b.Fatalf("no unit %q", name)
	}
	req := lift.Binary(unit.Name, unit.Image)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := lift.One(context.Background(), req, lift.Jobs(1))
		if r.Status != core.StatusLifted {
			b.Fatalf("%s: %s", unit.Name, r.Status)
		}
		for _, fr := range r.Binary.Funcs {
			rep := triple.Check(context.Background(), unit.Image, fr.Graph, sem.DefaultConfig(), triple.Workers(2))
			if rep.Failed != 0 {
				b.Fatalf("%s/%s: %d failed theorems", unit.Name, fr.Name, rep.Failed)
			}
		}
	}
}

func BenchmarkTable2_hexdump(b *testing.B) { benchTable2(b, "hexdump") }
func BenchmarkTable2_od(b *testing.B)      { benchTable2(b, "od") }
func BenchmarkTable2_wc(b *testing.B)      { benchTable2(b, "wc") }
func BenchmarkTable2_tar(b *testing.B)     { benchTable2(b, "tar") }
func BenchmarkTable2_du(b *testing.B)      { benchTable2(b, "du") }
func BenchmarkTable2_gzip(b *testing.B)    { benchTable2(b, "gzip") }

// benchFigure3 lifts single functions of a given size class, producing the
// per-size series of Figure 3 (verification time vs instruction count).
func benchFigure3(b *testing.B, stmts int) {
	shape := corpus.DirShape{
		Name: "fig3", Kind: corpus.KindLibFunc, Lifted: 3,
		MinStmts: stmts, MaxStmts: stmts, Helpers: 1,
	}
	dir, err := corpus.BuildDirectory(shape, int64(stmts))
	if err != nil {
		b.Fatal(err)
	}
	var instrs int
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		instrs = 0
		for _, u := range dir.Units {
			l := core.New(u.Image, core.DefaultConfig())
			fr := l.LiftFuncCtx(context.Background(), u.FuncAddr, u.Name)
			instrs += fr.Stats().Instructions
		}
	}
	b.ReportMetric(float64(instrs), "instructions")
}

func BenchmarkFigure3_small(b *testing.B)  { benchFigure3(b, 2) }
func BenchmarkFigure3_medium(b *testing.B) { benchFigure3(b, 6) }
func BenchmarkFigure3_large(b *testing.B)  { benchFigure3(b, 12) }
func BenchmarkFigure3_xlarge(b *testing.B) { benchFigure3(b, 24) }

// BenchmarkWeirdEdge lifts and proves the Section 2 binary.
func BenchmarkWeirdEdge(b *testing.B) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l := core.New(s.Image, core.DefaultConfig())
		r := l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
		if r.Status != core.StatusLifted {
			b.Fatal(r.Status)
		}
		rep := triple.Check(context.Background(), s.Image, r.Graph, sem.DefaultConfig(), triple.Workers(2))
		if rep.Failed != 0 {
			b.Fatal("weird-edge theorems failed")
		}
	}
}

// BenchmarkFailures runs the Section 5.3 rejection scenarios.
func BenchmarkFailures(b *testing.B) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, s := range scenarios {
			l := core.New(s.Image, core.DefaultConfig())
			l.LiftFuncCtx(context.Background(), s.FuncAddr, s.Name)
		}
	}
}

// ablationConfig lifts the lib directory under a modified configuration.
func benchAblation(b *testing.B, mutate func(*core.Config)) {
	dir := table1Dirs(b)["lib"]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, u := range dir.Units {
			cfg := core.DefaultConfig()
			if u.Budget > 0 {
				cfg.MaxStates = u.Budget
			}
			mutate(&cfg)
			l := core.New(u.Image, cfg)
			l.LiftFuncCtx(context.Background(), u.FuncAddr, u.Name)
		}
	}
}

// BenchmarkAblationBaseline is the reference point for the ablations.
func BenchmarkAblationBaseline(b *testing.B) {
	benchAblation(b, func(cfg *core.Config) {})
}

// BenchmarkAblationNoJoin disables state joining: every visit explores a
// fresh state (bounded only by MaxStates).
func BenchmarkAblationNoJoin(b *testing.B) {
	benchAblation(b, func(cfg *core.Config) {
		cfg.NoJoin = true
		cfg.MaxStates = 2000
	})
}

// BenchmarkAblationJoinCodePointers joins states holding different
// code-pointer immediates, losing indirection resolution.
func BenchmarkAblationJoinCodePointers(b *testing.B) {
	benchAblation(b, func(cfg *core.Config) { cfg.JoinCodePointers = true })
}

// BenchmarkAblationNoForkUnknown destroys on undecided pointer relations
// instead of forking memory models.
func BenchmarkAblationNoForkUnknown(b *testing.B) {
	benchAblation(b, func(cfg *core.Config) { cfg.Sem.MM.ForkUnknown = false })
}

// BenchmarkAblationNoBaseAssumptions removes the paper's implicit
// provenance-separation assumptions: most functions then fail.
func BenchmarkAblationNoBaseAssumptions(b *testing.B) {
	benchAblation(b, func(cfg *core.Config) { cfg.Sem.AssumeBaseSeparation = false })
}

// Pointer pre-pass benchmarks: the pathological ptr_ directory lifted
// without and with per-function fact tables. The pair's fork+destroy and
// wall-time ratio is the PR-10 payoff recorded in BENCH_PR10.json; the
// factless run deliberately includes the forkbomb unit's budget-exhausted
// timeout, because that exhausted budget IS the cost being measured.
var (
	benchPtrDir  *corpus.Directory
	benchPtrOnce sync.Once
)

func ptrPathology(b *testing.B) *corpus.Directory {
	b.Helper()
	benchPtrOnce.Do(func() {
		dir, err := corpus.PtrPathology()
		if err != nil {
			panic(err)
		}
		benchPtrDir = dir
	})
	return benchPtrDir
}

func benchPtrPathology(b *testing.B, facts bool) {
	dir := ptrPathology(b)
	opts := []lift.Option{lift.Jobs(1)}
	if facts {
		opts = append(opts, lift.PointerFacts())
	}
	var sum *lift.Summary
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sum = lift.Run(context.Background(), lift.UnitRequests(dir.Units), opts...)
		if sum.Panics != 0 {
			b.Fatalf("%d lifts panicked", sum.Panics)
		}
	}
	b.ReportMetric(float64(sum.Stats.Sem.Forks+sum.Stats.Sem.Destroys), "fork+destroy")
}

func BenchmarkPtrPathology(b *testing.B)      { benchPtrPathology(b, false) }
func BenchmarkPtrPathologyFacts(b *testing.B) { benchPtrPathology(b, true) }

// BenchmarkPtrAnalyze isolates the pre-pass itself — one abstract-
// interpretation walk plus the O(regions²) pair stage per unit — to show
// its cost is noise next to the exploration it saves.
func BenchmarkPtrAnalyze(b *testing.B) {
	dir := ptrPathology(b)
	var facts int
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		facts = 0
		for _, u := range dir.Units {
			an := ptr.Analyze(u.Image, u.FuncAddr)
			facts += an.Stats.Proven + an.Stats.Hypotheses
		}
	}
	b.ReportMetric(float64(facts), "facts")
}

// BenchmarkMemModelIns measures raw memory-model insertion (the ins
// function of Definition 3.7) on a growing stack frame.
func BenchmarkMemModelIns(b *testing.B) {
	cfg := memmodel.DefaultConfig()
	o := benchOracle{p: pred.New()}
	for i := 0; i < b.N; i++ {
		var f memmodel.Forest
		for s := 0; s < 16; s++ {
			res := memmodel.Ins(benchRegion(int64(-8*(s+1))), f, o, cfg)
			f = res[0].Forest
		}
	}
}

type benchOracle struct{ p *pred.Pred }

func (o benchOracle) Compare(r0, r1 solver.Region) solver.Result {
	return solver.Compare(o.p, r0, r1)
}

func benchRegion(off int64) solver.Region {
	return solver.Region{Addr: expr.Add(expr.V("rsp0"), expr.Word(uint64(off))), Size: 8}
}
