package repro

// Integration tests for the obs trace layer through the lift facade: the
// golden event sequence of deterministic single lifts, the contract that a
// JSONL trace carries exactly the per-lift counts the pipeline's Stats
// report, and counter determinism across worker counts.

import (
	"bytes"
	"context"
	"encoding/json"
	"reflect"
	"strings"
	"testing"

	"repro/internal/corpus"
	"repro/internal/obs"
	"repro/lift"
)

// traceOf lifts one scenario serially with a ring sink attached and
// returns the recorded events plus the lift's result.
func traceOf(t *testing.T, s *corpus.Scenario) ([]obs.Event, lift.Result) {
	t.Helper()
	ring := obs.NewRing(1 << 16)
	res := lift.One(context.Background(), lift.Func(s.Name, s.Image, s.FuncAddr),
		lift.Jobs(1), lift.Observe(ring))
	if ring.Dropped() != 0 {
		t.Fatalf("ring dropped %d events", ring.Dropped())
	}
	return ring.Events(), res
}

func filterKind(evs []obs.Event, k obs.Kind) []obs.Event {
	var out []obs.Event
	for _, e := range evs {
		if e.Kind == k {
			out = append(out, e)
		}
	}
	return out
}

// TestGoldenTraceForks lifts the Section 2 weird-edge scenario — whose
// aliasing store forks the memory model — and checks the trace's envelope
// and its exact agreement with the machine's counters.
func TestGoldenTraceForks(t *testing.T) {
	s, err := corpus.WeirdEdge()
	if err != nil {
		t.Fatal(err)
	}
	evs, res := traceOf(t, s)
	if len(evs) < 4 {
		t.Fatalf("only %d events", len(evs))
	}
	// Envelope: task-start, lift-start ... lift-finish, task-finish, every
	// event labelled with the lift's name.
	if evs[0].Kind != obs.KTaskStart || evs[1].Kind != obs.KLiftStart {
		t.Fatalf("trace opens %s, %s", evs[0].Kind, evs[1].Kind)
	}
	last := evs[len(evs)-1]
	if evs[len(evs)-2].Kind != obs.KLiftFinish || last.Kind != obs.KTaskFinish {
		t.Fatalf("trace closes %s, %s", evs[len(evs)-2].Kind, last.Kind)
	}
	for i, e := range evs {
		if e.Lift != s.Name {
			t.Fatalf("event %d labelled %q, want %q", i, e.Lift, s.Name)
		}
	}
	// The fork/destroy/solver events reproduce the Stats counters exactly.
	var forks uint64
	for _, e := range filterKind(evs, obs.KFork) {
		forks += e.N
	}
	if forks == 0 {
		t.Fatal("weird-edge must fork at least once")
	}
	if want := res.Stats.Sem.Forks; forks != want {
		t.Fatalf("fork events total %d, Stats.Sem.Forks = %d", forks, want)
	}
	if got, want := uint64(len(filterKind(evs, obs.KDestroy))), res.Stats.Sem.Destroys; got != want {
		t.Fatalf("destroy events %d, Stats.Sem.Destroys = %d", got, want)
	}
	solver := filterKind(evs, obs.KSolver)
	if got, want := uint64(len(solver)), res.Stats.Sem.SolverQueries; got != want {
		t.Fatalf("solver events %d, Stats.Sem.SolverQueries = %d", got, want)
	}
	var hits uint64
	for _, e := range solver {
		if e.Hit {
			hits++
		}
	}
	if want := res.Stats.Sem.SolverHits; hits != want {
		t.Fatalf("solver hit events %d, Stats.Sem.SolverHits = %d", hits, want)
	}
	if got, want := len(filterKind(evs, obs.KStep)), res.Func.Steps; got != want {
		t.Fatalf("step events %d, FuncResult.Steps = %d", got, want)
	}

	// A serial lift is deterministic, so a second run replays the same
	// fork/destroy sequence event for event.
	evs2, _ := traceOf(t, s)
	for _, k := range []obs.Kind{obs.KFork, obs.KDestroy} {
		if a, b := filterKind(evs, k), filterKind(evs2, k); !reflect.DeepEqual(a, b) {
			t.Fatalf("%s sequence differs between identical serial runs", k)
		}
	}
}

// TestGoldenTraceObligations lifts the ret2win scenario and requires the
// obligation events to replay the graph's generated proof obligations in
// order.
func TestGoldenTraceObligations(t *testing.T) {
	s, err := corpus.Ret2Win()
	if err != nil {
		t.Fatal(err)
	}
	evs, res := traceOf(t, s)
	if res.Func == nil || res.Func.Graph == nil {
		t.Fatalf("no graph (status %s)", res.Status)
	}
	want := res.Func.Graph.Obligations
	if len(want) == 0 {
		t.Fatal("ret2win must generate obligations")
	}
	got := filterKind(evs, obs.KObligation)
	if len(got) != len(want) {
		t.Fatalf("%d obligation events, graph has %d obligations", len(got), len(want))
	}
	for i, e := range got {
		if e.Detail != want[i] {
			t.Fatalf("obligation %d = %q, want %q", i, e.Detail, want[i])
		}
	}
}

// TestJSONLTraceMatchesStats is the acceptance check for the -trace flag:
// decoding a JSONL trace and grouping by lift label must reproduce each
// lift's fork/destroy/solver counts as reported by the pipeline's Stats.
func TestJSONLTraceMatchesStats(t *testing.T) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]lift.Request, 0, len(scenarios))
	for _, s := range scenarios {
		reqs = append(reqs, lift.Func(s.Name, s.Image, s.FuncAddr))
	}
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	sum := lift.Run(context.Background(), reqs, lift.Jobs(4), lift.Observe(jsonl))
	if err := jsonl.Err(); err != nil {
		t.Fatal(err)
	}

	type tally struct{ forks, destroys, queries, hits uint64 }
	got := map[string]*tally{}
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var e struct {
			Kind string `json:"k"`
			Lift string `json:"lift"`
			N    uint64 `json:"n"`
			Hit  bool   `json:"hit"`
		}
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("bad JSONL line: %v", err)
		}
		c := got[e.Lift]
		if c == nil {
			c = &tally{}
			got[e.Lift] = c
		}
		switch e.Kind {
		case "fork":
			c.forks += e.N
		case "destroy":
			c.destroys++
		case "solver":
			c.queries++
			if e.Hit {
				c.hits++
			}
		}
	}
	for _, r := range sum.Results {
		c := got[r.Name]
		if c == nil {
			t.Fatalf("no trace events for lift %q", r.Name)
		}
		if c.forks != r.Stats.Sem.Forks || c.destroys != r.Stats.Sem.Destroys ||
			c.queries != r.Stats.Sem.SolverQueries || c.hits != r.Stats.Sem.SolverHits {
			t.Fatalf("%s: trace counts forks=%d destroys=%d queries=%d hits=%d, Stats %+v",
				r.Name, c.forks, c.destroys, c.queries, c.hits, r.Stats.Sem)
		}
	}
}

// TestJSONLFlushOnCancel cancels a run before it starts: every task
// reports cancelled, and the buffered JSONL sink must still surface the
// full tail after Err (which flushes), with the metrics registry
// aggregating the cancellations — the "kill a corpus run mid-flight and
// keep its trace" contract of the batch commands.
func TestJSONLFlushOnCancel(t *testing.T) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]lift.Request, 0, len(scenarios))
	for _, s := range scenarios {
		reqs = append(reqs, lift.Func(s.Name, s.Image, s.FuncAddr))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var buf bytes.Buffer
	jsonl := obs.NewJSONL(&buf)
	metrics := obs.NewMetrics()
	sum := lift.Run(ctx, reqs, lift.Jobs(2), lift.Observe(jsonl, metrics))
	if sum.Cancelled != len(reqs) {
		t.Fatalf("Cancelled = %d, want %d", sum.Cancelled, len(reqs))
	}
	if err := jsonl.Err(); err != nil {
		t.Fatal(err)
	}
	finishes := 0
	dec := json.NewDecoder(&buf)
	for dec.More() {
		var e struct {
			Kind   string `json:"k"`
			Status string `json:"status"`
		}
		if err := dec.Decode(&e); err != nil {
			t.Fatalf("bad JSONL line after flush: %v", err)
		}
		if e.Kind == "task-finish" && e.Status == "cancelled" {
			finishes++
		}
	}
	if finishes != len(reqs) {
		t.Fatalf("flushed trace has %d cancelled task-finish lines, want %d", finishes, len(reqs))
	}
	if got := metrics.CounterSnapshot()["task.cancelled"]; got != uint64(len(reqs)) {
		t.Fatalf("task.cancelled counter = %d, want %d", got, len(reqs))
	}
	if !strings.Contains(metrics.Dump(), "task.cancelled") {
		t.Fatal("metrics dump missing task.cancelled after cancel")
	}
}

// TestMetricsDeterministicAcrossJobs runs the same corpus serially and at
// four workers and requires every counter to agree except solver.hits,
// which depends on memo-cache arrival order (concurrent misses on a fresh
// key each count as a miss before the first verdict lands).
func TestMetricsDeterministicAcrossJobs(t *testing.T) {
	scenarios, err := corpus.AllScenarios()
	if err != nil {
		t.Fatal(err)
	}
	reqs := make([]lift.Request, 0, len(scenarios))
	for _, s := range scenarios {
		reqs = append(reqs, lift.Func(s.Name, s.Image, s.FuncAddr))
	}
	snap := func(jobs int) map[string]uint64 {
		m := obs.NewMetrics()
		lift.Run(context.Background(), reqs, lift.Jobs(jobs), lift.Observe(m))
		c := m.CounterSnapshot()
		delete(c, "solver.hits")
		return c
	}
	serial, parallel := snap(1), snap(4)
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("counters diverge across job counts:\n-jobs 1: %v\n-jobs 4: %v", serial, parallel)
	}
}
