#!/bin/sh
# bench.sh — run the interning micro-benchmarks (and, unless -short, the
# Table 1 corpus benchmarks) and emit one benchfmt-style JSON file: an array
# of {name, iters, ns_per_op, B_per_op, allocs_per_op, hit_pct} records plus
# a small environment header. Run from the repo root:
#
#   ./scripts/bench.sh                    # full set, writes BENCH.json
#   ./scripts/bench.sh -short             # micro-benchmarks only (CI smoke)
#   ./scripts/bench.sh -o BENCH_PR5.json  # choose the output file
#
# BENCH_PR5.json in the repo root is the recorded before/after baseline for
# the hash-consing PR: two runs of this script (the "before" one from a
# pre-interning checkout) merged under {"before": ..., "after": ...}.
set -eu
cd "$(dirname "$0")/.."

out="BENCH.json"
short=0
count=1
while [ $# -gt 0 ]; do
    case "$1" in
    -short) short=1 ;;
    -count)
        count="$2"
        shift
        ;;
    -o)
        out="$2"
        shift
        ;;
    *)
        echo "usage: ./scripts/bench.sh [-short] [-count N] [-o out.json]" >&2
        exit 2
        ;;
    esac
    shift
done

raw=$(mktemp)
trap 'rm -f "$raw"' EXIT

# Micro-benchmarks: expression equality/keys, predicate ranges and joins,
# solver cache probes. Each package run separately so a compile error in one
# doesn't mask the others.
go test -run '^$' -count="$count" -benchmem \
    -bench '^(BenchmarkEqual|BenchmarkKeyShared|BenchmarkSubstAbsent)$' \
    ./internal/expr/ | tee -a "$raw"
go test -run '^$' -count="$count" -benchmem \
    -bench '^(BenchmarkRangesKey|BenchmarkJoin|BenchmarkLeq)$' \
    ./internal/pred/ | tee -a "$raw"
go test -run '^$' -count="$count" -benchmem \
    -bench '^BenchmarkSolverCompareCached$' \
    ./internal/solver/ | tee -a "$raw"

# End-to-end: one serial and one parallel Table 1 directory through the full
# pipeline (scaled-down corpus; see bench_test.go), plus the warm-store
# re-run (every task served from a pre-populated HG store, zero lifts) —
# cold vs warm is the incremental-lifting ratio recorded in BENCH_PR7.json.
# Skipped by -short to keep the CI smoke job fast.
if [ "$short" -eq 0 ]; then
    go test -run '^$' -count="$count" -benchmem \
        -bench '^(BenchmarkTable1_lib|BenchmarkTable1_lib_parallel|BenchmarkTable1_lib_warmstore)$' \
        . | tee -a "$raw"
fi

# Pointer pre-pass: the pathological ptr_ directory without and with
# per-function fact tables, plus the pre-pass on its own. The
# PtrPathology vs PtrPathologyFacts pair (wall time and the fork+destroy
# metric) is the datapoint recorded in BENCH_PR10.json.
go test -run '^$' -count="$count" -benchmem \
    -bench '^(BenchmarkPtrPathology|BenchmarkPtrPathologyFacts|BenchmarkPtrAnalyze)$' \
    . | tee -a "$raw"

# Distributed Step 2: the in-process baseline against worker-subprocess
# runs at 1/2/4 workers (internal/dist). The workers=1 vs workers=N pair
# is the scaling datapoint recorded in BENCH_PR6.json; workers=1 vs
# InProcess isolates the shard protocol overhead.
go test -run '^$' -count="$count" -benchmem \
    -bench '^(BenchmarkStep2InProcess|BenchmarkStep2Workers)$' \
    ./internal/dist/ | tee -a "$raw"

# Fold the go test -bench lines into JSON. Value/unit pairs follow the
# iteration count; units become keys (ns/op -> ns_per_op, hit% -> hit_pct).
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" -v go="$(go env GOVERSION)" '
BEGIN {
    printf "{\n  \"date\": \"%s\",\n  \"go\": \"%s\",\n  \"benchmarks\": [", date, go
    sep = ""
}
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)
    printf "%s\n    {\"name\": \"%s\", \"iters\": %s", sep, name, $2
    for (i = 3; i < NF; i += 2) {
        key = $(i + 1)
        gsub(/\//, "_per_", key)
        gsub(/%/, "_pct", key)
        gsub(/[^A-Za-z0-9_]/, "_", key)
        printf ", \"%s\": %s", key, $i
    }
    printf "}"
    sep = ","
}
END { printf "\n  ]\n}\n" }
' "$raw" >"$out"
echo "bench.sh: wrote $out"
