#!/bin/sh
# check.sh — fast hygiene gate: formatting and vet, then (optionally) the
# full tier-1 test matrix. Run from the repo root:
#
#   ./scripts/check.sh          # gofmt + go vet + go build
#   ./scripts/check.sh -full    # also go test ./... and go test -race ./...
set -eu
cd "$(dirname "$0")/.."

unformatted=$(gofmt -l . | grep -v '^tmp_' || true)
if [ -n "$unformatted" ]; then
    echo "gofmt: the following files need formatting:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Custom vet passes (ctxless, obsnil) via the repo's own vettool.
vettool=$(mktemp -d)
trap 'rm -rf "$vettool"' EXIT
go build -o "$vettool/reprovet" ./cmd/reprovet
go vet -vettool="$vettool/reprovet" ./...

if [ "${1:-}" = "-full" ]; then
    go test ./...
    go test -race ./...
fi
echo "check.sh: OK"
